"""RunPlan construction sites: entry points plus PAR003 violations."""

from repro.experiments.parallel import RunPlan, run_many
from repro.sim.random import RandomStreams

from carrier import PlainConfig, SeededSampler, StreamCarrier
from work import cell


def launch(master_seed):
    rng = RandomStreams(master_seed)
    sampler = SeededSampler(master_seed)

    def local_cell(seed):
        return seed

    plans = [
        RunPlan(cell, {"seed": 1}, label="ok-shape"),
        RunPlan(lambda seed: seed, {"seed": 2}),  # PAR003: lambda
        RunPlan(local_cell, {"seed": 3}),  # PAR003: nested function
        RunPlan(cell, {"seed": rng.stream("cell")}),  # PAR003: live RNG
        # PAR003: instance of a class holding a live-RNG attribute,
        # constructed inline ...
        RunPlan(cell, {"seed": 4, "sampler": SeededSampler(4)}),
        # ... or earlier in the function ...
        RunPlan(cell, {"seed": 5, "sampler": sampler}),
        # ... or holding an RNG received through an annotated parameter.
        RunPlan(cell, {"seed": 6, "carrier": StreamCarrier(rng)}),
        # Fine: PlainConfig has no RNG attributes.
        RunPlan(cell, {"seed": 7, "config": PlainConfig(2.0)}, label="ok-obj"),
    ]
    return run_many(plans, jobs=2)
