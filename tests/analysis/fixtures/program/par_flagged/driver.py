"""RunPlan construction sites: entry points plus PAR003 violations."""

from repro.experiments.parallel import RunPlan, run_many
from repro.sim.random import RandomStreams

from work import cell


def launch(master_seed):
    rng = RandomStreams(master_seed)

    def local_cell(seed):
        return seed

    plans = [
        RunPlan(cell, {"seed": 1}, label="ok-shape"),
        RunPlan(lambda seed: seed, {"seed": 2}),  # PAR003: lambda
        RunPlan(local_cell, {"seed": 3}),  # PAR003: nested function
        RunPlan(cell, {"seed": rng.stream("cell")}),  # PAR003: live RNG
    ]
    return run_many(plans, jobs=2)
