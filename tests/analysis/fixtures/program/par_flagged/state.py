"""Deliberate PAR001/PAR002 violations: mutable module globals."""

import itertools

CACHE = {}
COUNTER = itertools.count()


def bump(key):
    CACHE[key] = CACHE.get(key, 0) + 1  # PAR002: worker-reachable mutation


def fresh_id():
    return next(COUNTER)  # PAR002: worker-reachable counter advance


def peek(key):
    return CACHE.get(key, 0)  # PAR001: worker-reachable read
