"""Worker cell that reaches the mutable state in state.py."""

from state import bump, fresh_id, peek


def cell(seed):
    bump("runs")
    return peek("runs") + fresh_id() + seed
