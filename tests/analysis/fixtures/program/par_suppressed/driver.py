"""Entry point reaching the suppressed mutation."""

from repro.experiments.parallel import RunPlan, run_many

from state import bump


def launch():
    return run_many([RunPlan(bump), RunPlan(bump)], jobs=2)
