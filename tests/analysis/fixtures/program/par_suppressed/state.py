"""A documented PAR002 suppression is honoured by the program pass."""

TALLY = {}


def bump():
    # ursalint: disable=PAR002 -- fixture: documented, deliberate drift
    TALLY["n"] = TALLY.get("n", 0) + 1
