"""SIM001 fixture: simulated time only; must be clean."""


def sample_service_time(env):
    started = env.now
    yield env.timeout(1.0)
    return env.now - started
