"""SIM001 fixture: wall-clock reads that must be flagged."""

import time
from datetime import datetime


def sample_service_time():
    started = time.time()
    elapsed = time.perf_counter() - started
    stamp = datetime.now()
    return elapsed, stamp
