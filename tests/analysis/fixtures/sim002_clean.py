"""SIM002 fixture: named streams and explicit seeding; must be clean."""

import numpy as np


def jitter(streams):
    rng = streams.stream("fixture:jitter")
    return rng.uniform(0.0, 1.0)


def explicit_generator(seed):
    # An explicitly seeded generator is reproducible; only the *global*
    # state (np.random.seed / argless default_rng) is banned.
    return np.random.default_rng(np.random.SeedSequence(entropy=seed))
