"""SIM002 fixture: global RNG state that must be flagged."""

import random

import numpy as np


def jitter():
    np.random.seed(0)
    return random.random() + np.random.uniform(0.0, 1.0)
