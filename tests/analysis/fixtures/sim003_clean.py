"""SIM003 fixture: sorted iteration and order-free set use; must be clean."""


def active_services(app) -> set[str]:
    return {name for name in app.services if app.is_active(name)}


def restart_services(app, names):
    pending = set(names) - set(app.started)
    if "frontend" in pending:  # membership tests are order-free
        app.restart("frontend")
    for service in sorted(pending):
        app.restart(service)
    if "frontend" in active_services(app):  # membership, still order-free
        app.restart("frontend")
    return len(pending)
