"""SIM003 fixture: sorted iteration and order-free set use; must be clean."""


def restart_services(app, names):
    pending = set(names) - set(app.started)
    if "frontend" in pending:  # membership tests are order-free
        app.restart("frontend")
    for service in sorted(pending):
        app.restart(service)
    return len(pending)
