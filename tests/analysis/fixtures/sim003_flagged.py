"""SIM003 fixture: set iteration that must be flagged."""


def restart_services(app, names):
    pending = set(names) - set(app.started)
    for service in pending:
        app.restart(service)
    return [name.upper() for name in {"a", "b"} | pending]
