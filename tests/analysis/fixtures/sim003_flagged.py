"""SIM003 fixture: set iteration that must be flagged."""


def active_services(app) -> set[str]:
    return {name for name in app.services if app.is_active(name)}


def restart_services(app, names):
    pending = set(names) - set(app.started)
    for service in pending:
        app.restart(service)
    # Calls to module-local set-annotated functions are just as unordered.
    for service in active_services(app):
        app.restart(service)
    return [name.upper() for name in {"a", "b"} | pending]
