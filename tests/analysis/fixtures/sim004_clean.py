"""SIM004 fixture: precise excepts / re-raise / non-process code; clean."""


def worker_loop(env, queue):
    while True:
        try:
            item = yield queue.get()
        except KeyError:  # specific exceptions are fine
            continue
        except Exception:
            log_failure()
            raise  # re-raising keeps Interrupt flowing
        yield env.timeout(item.cost)


def load_config(path):
    # Not a generator: broad excepts outside process bodies are allowed
    # (they cannot swallow an Interrupt).
    try:
        return parse(path)
    except Exception:
        return None


def log_failure():
    pass


def parse(path):
    return path
