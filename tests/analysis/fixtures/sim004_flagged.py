"""SIM004 fixture: broad excepts in generator processes; must be flagged."""


def worker_loop(env, queue):
    while True:
        try:
            item = yield queue.get()
        except Exception:  # swallows Interrupt
            continue
        yield env.timeout(item.cost)


def drain(env, store):
    try:
        while True:
            yield store.get()
    except:  # noqa: E722 -- the point of the fixture
        pass
