"""SIM005 fixture: release in a finally; must be clean."""


def handle_request(env, replica, request):
    yield replica.threads.acquire(priority=request.priority)
    try:
        yield env.timeout(request.work)
    finally:
        replica.threads.release()


def plain_helper(lock):
    # Not a generator: threading-style acquire outside a process body is
    # out of scope for SIM005.
    lock.acquire()
    lock.release()
