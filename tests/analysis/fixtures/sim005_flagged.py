"""SIM005 fixture: acquire without release-in-finally; must be flagged."""


def handle_request(env, replica, request):
    yield replica.threads.acquire(priority=request.priority)
    yield env.timeout(request.work)
    replica.threads.release()  # leaks if the timeout is interrupted
