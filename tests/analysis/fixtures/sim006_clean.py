"""SIM006 fixture: ordered comparisons against env.now; must be clean."""


def is_deadline(env, deadline):
    return env.now >= deadline


def within(env, t0, t1):
    return t0 <= env.now < t1
