"""SIM006 fixture: exact equality against env.now; must be flagged."""


def is_deadline(env, deadline):
    if env.now == deadline:
        return True
    return self_check(env) and env.now != deadline


def self_check(env):
    return True
