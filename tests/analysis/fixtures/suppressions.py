"""Suppression fixture: every violation carries a disable comment; clean."""

import time


def probe():
    start = time.perf_counter()  # ursalint: disable=SIM001 -- wall probe
    # ursalint: disable=SIM001 -- standalone comment covers the next line
    return time.perf_counter() - start


def multi(names):
    # ursalint: disable=SIM003, SIM001 -- comma-separated list
    for name in set(names):
        probe_at = time.time()  # ursalint: disable=SIM001
        yield name, probe_at
