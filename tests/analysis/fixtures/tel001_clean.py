"""TEL001 fixture: registered (or dynamic) metric writes; must be clean."""


def record(hub, service, name):
    hub.record_latency("service_latency", 0.5, {"service": service, "request": "r"})
    hub.inc_counter("requests_total", labels={"request": "r", "service": service})
    # Subset of the declared label keys is allowed.
    hub.observe_gauge("cpu_utilization", 0.4)
    # Dynamic names are the runtime check's job, not the linter's.
    hub.inc_counter(name, labels={"anything": "goes"})
