"""TEL001 fixture: registered (or dynamic) metric writes; must be clean."""

#: A registered name behind a module-level constant resolves cleanly.
_LATENCY_METRIC = "service_latency"

#: Reassigned constants are ambiguous and fall back to the runtime check.
_AMBIGUOUS = "not_a_metric"
_AMBIGUOUS = "also_not_a_metric"  # noqa: F811


def record(hub, service, name):
    hub.record_latency(_LATENCY_METRIC, 0.5, {"service": service})
    hub.inc_counter(_AMBIGUOUS, labels={"anything": "goes"})
    hub.record_latency("service_latency", 0.5, {"service": service, "request": "r"})
    hub.inc_counter("requests_total", labels={"request": "r", "service": service})
    # Subset of the declared label keys is allowed.
    hub.observe_gauge("cpu_utilization", 0.4)
    # Dynamic names are the runtime check's job, not the linter's.
    hub.inc_counter(name, labels={"anything": "goes"})
