"""TEL001 fixture: unregistered metric writes that must be flagged."""


def record(hub, service):
    # Typo'd name: no such metric in the registry.
    hub.record_latency("servce_latency", 0.5, {"service": service})
    # Kind mismatch: requests_total is a counter, not a gauge.
    hub.observe_gauge("requests_total", 1.0, {"service": service})
    # Undeclared label key on a registered metric.
    hub.inc_counter("sla_violations_total", labels={"tier": "frontend"})
