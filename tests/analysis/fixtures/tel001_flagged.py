"""TEL001 fixture: unregistered metric writes that must be flagged."""

#: Module-level constants resolve like literals.
_TYPOD_METRIC = "request_latencies"


def record(hub, service):
    # Typo'd name reached through a module-level constant.
    hub.record_latency(_TYPOD_METRIC, 0.5, {"request": "r"})
    # Typo'd name: no such metric in the registry.
    hub.record_latency("servce_latency", 0.5, {"service": service})
    # Kind mismatch: requests_total is a counter, not a gauge.
    hub.observe_gauge("requests_total", 1.0, {"service": service})
    # Undeclared label key on a registered metric.
    hub.inc_counter("sla_violations_total", labels={"tier": "frontend"})
