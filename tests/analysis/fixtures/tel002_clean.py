"""TEL002 fixture: declared (or dynamic) alert names; must be clean."""

from repro.telemetry.slo import ALERT_BURN_RATE, Alert

#: A declared name behind a module-level constant resolves cleanly.
_BUDGET_ALERT = "slo-budget-exhausted"


def emit(monitor, now, dynamic_name):
    Alert("slo-burn-rate", "read", "fire", now, 4.0, 4.0, 0.5)
    Alert(_BUDGET_ALERT, "read", "fire", now, 4.0, 4.0, 1.0)
    # Imported canonical constants are dynamic to this module's pre-pass
    # and fall back to the monitor's runtime check.
    Alert(ALERT_BURN_RATE, "read", "resolve", now, 0.0, 0.0, 0.5)
    # Dynamic names are the runtime check's job, not the linter's.
    monitor._emit(dynamic_name, "read", "fire", now, 0.0, 0.0, 0.0)
