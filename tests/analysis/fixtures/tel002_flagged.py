"""TEL002 fixture: undeclared alert names that must be flagged."""

from repro.telemetry.slo import Alert

#: Module-level constants resolve like literals.
_TYPOD_ALERT = "slo-burn-rates"


def emit(monitor, now):
    # Typo'd name reached through a module-level constant.
    Alert(_TYPOD_ALERT, "read", "fire", now, 4.0, 4.0, 0.5)
    # Typo'd literal: no such alert in the registry.
    Alert(
        name="slo-budget-exhuasted",
        request_class="read",
        state="fire",
        time=now,
        fast_burn=4.0,
        slow_burn=4.0,
        budget_consumed=1.0,
    )
    # The monitor's internal emit path is checked the same way.
    monitor._emit("slo-made-up", "read", "fire", now, 0.0, 0.0, 0.0)
