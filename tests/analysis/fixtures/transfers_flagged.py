"""Ownership annotations that fail verification (SIM005)."""


def wrong_receiver(pool, other):
    # The annotation names a different resource than the acquire.
    # ursalint: transfers=other -- typo: should say pool
    yield pool.acquire()
    yield other.release()


def dangling_transfer(gate):
    # Declared handoff, but nothing in this module ever releases gate.
    # ursalint: transfers=gate -- nobody picks this up
    yield gate.acquire()


def unused_annotation(pool):
    # ursalint: transfers=pool -- no acquire on the next line
    yield pool.release()
