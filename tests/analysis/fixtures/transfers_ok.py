"""Checked ownership annotations that verify cleanly (SIM005)."""


def producer(pool, queue):
    while True:
        item = yield queue.consume()
        # ursalint: transfers=pool -- released by consumer below
        yield pool.acquire(priority=0)
        yield spawn(consumer(pool, item))


def consumer(pool, item):
    try:
        yield work(item)
    finally:
        pool.release()


def spawn(process):
    return process


def work(item):
    return item
