"""CLI behaviour: exit codes, reporters, rule selection."""

import json
import re
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


# The fixtures are deliberate violations, so the policy excludes them
# from default linting (profile "lint-fixtures"); the CLI tests select
# each fixture's rule explicitly.


def test_flagged_fixture_exits_nonzero(capsys):
    code = main([str(FIXTURES / "sim001_flagged.py"), "--select", "SIM001"])
    out = capsys.readouterr().out
    assert code == 1
    assert "SIM001" in out
    assert "sim001_flagged.py:" in out  # file:line diagnostics


def test_every_flagged_fixture_exits_nonzero(capsys):
    flagged = sorted(FIXTURES.glob("*_flagged.py"))
    assert len(flagged) >= 7
    for fixture in flagged:
        if re.match(r"^[a-z]{3}\d{3}_", fixture.name):
            rule_id = fixture.name[:6].upper()
        else:
            rule_id = "SIM005"  # transfers_flagged.py: bad annotations
        assert main([str(fixture), "--select", rule_id]) == 1, fixture.name
    capsys.readouterr()


def test_fixtures_are_policy_excluded(capsys):
    # Without an explicit --select, the lint-fixtures profile applies and
    # the deliberate violations stay quiet.
    assert main([str(FIXTURES / "sim001_flagged.py")]) == 0
    capsys.readouterr()


def test_clean_fixture_exits_zero(capsys):
    assert main([str(FIXTURES / "sim001_clean.py")]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_reporter(capsys):
    code = main(
        [str(FIXTURES / "sim006_flagged.py"), "--format", "json",
         "--select", "SIM006"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"SIM006"}
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "message"}


def test_select_limits_rules(capsys):
    code = main([str(FIXTURES / "sim002_flagged.py"), "--select", "SIM001"])
    assert code == 0  # file has SIM002 violations but only SIM001 selected
    capsys.readouterr()


def test_ignore_drops_rules(capsys):
    code = main([str(FIXTURES / "sim002_flagged.py"), "--ignore", "SIM002"])
    assert code == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(capsys):
    code = main([str(FIXTURES / "sim001_clean.py"), "--select", "XYZ123"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "does_not_exist.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM006", "API001"):
        assert rule_id in out


def test_show_policy(capsys):
    assert main(["--show-policy", "src/repro/experiments/x.py"]) == 0
    out = capsys.readouterr().out
    assert "profile=experiments" in out
    assert "SIM001" not in out.split("rules=")[1]
