"""Framework behaviour: suppressions, policy selection, helpers."""

from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintError,
    lint_file,
    lint_source,
    profile_for_path,
    registry,
)
from repro.analysis.policy import (
    EXPERIMENTS_ALLOWLIST,
    INTERNAL_ALLOWLIST,
    PERF_BENCH_ALLOWLIST,
    SIM_PATH_PACKAGES,
)

FIXTURES = Path(__file__).parent / "fixtures"


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
def test_suppressions_fixture_is_fully_clean():
    assert lint_file(FIXTURES / "suppressions.py") == []


def test_trailing_suppression_silences_only_that_line():
    source = (
        "import time\n"
        "a = time.time()  # ursalint: disable=SIM001\n"
        "b = time.time()\n"
    )
    findings = lint_source(source, "x.py", rule_ids=["SIM001"])
    assert [f.line for f in findings] == [3]


def test_standalone_suppression_covers_next_line():
    source = (
        "import time\n"
        "# ursalint: disable=SIM001 -- reason\n"
        "a = time.time()\n"
    )
    assert lint_source(source, "x.py", rule_ids=["SIM001"]) == []


def test_suppression_of_other_rule_does_not_silence():
    source = "import time\na = time.time()  # ursalint: disable=SIM003\n"
    findings = lint_source(source, "x.py", rule_ids=["SIM001"])
    assert len(findings) == 1


def test_comma_separated_suppressions():
    source = (
        "import time\n"
        "for x in set([1]):  # ursalint: disable=SIM003,SIM001\n"
        "    pass\n"
    )
    assert lint_source(source, "x.py", rule_ids=["SIM001", "SIM003"]) == []


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
def test_sim_path_packages_get_every_rule():
    # Every rule except the facade-import rule, which only binds outside
    # the repro package (see INTERNAL_ALLOWLIST).
    for package in sorted(SIM_PATH_PACKAGES):
        profile = profile_for_path(f"src/repro/{package}/module.py")
        assert (
            profile.rules == frozenset(registry()) - INTERNAL_ALLOWLIST
        ), package


def test_experiments_profile_allowlists_wall_clock():
    profile = profile_for_path("src/repro/experiments/runner.py")
    assert (
        profile.rules
        == frozenset(registry()) - EXPERIMENTS_ALLOWLIST - INTERNAL_ALLOWLIST
    )
    assert "SIM001" not in profile.rules
    assert "SIM002" in profile.rules


def test_paths_outside_repro_get_strict_profile():
    profile = profile_for_path("scripts/some_tool.py")
    assert profile.rules == frozenset(registry())


def test_tests_profile_allowlists_test_idioms():
    from repro.analysis.policy import TESTS_ALLOWLIST

    profile = profile_for_path("tests/sim/test_engine.py")
    assert profile.name == "tests"
    assert profile.rules == frozenset(registry()) - TESTS_ALLOWLIST
    assert {"SIM005", "SIM006", "TEL001", "TEL002"} == TESTS_ALLOWLIST


def test_lint_fixtures_are_excluded_from_policy():
    profile = profile_for_path("tests/analysis/fixtures/sim001_flagged.py")
    assert profile.name == "lint-fixtures"
    assert profile.rules == frozenset()
    assert profile.program_rules == frozenset()


def test_program_rules_enabled_outside_fixtures():
    from repro.analysis.program import program_registry

    for path in ("src/repro/net/messages.py", "tests/sim/test_engine.py",
                 "benchmarks/test_probe.py", "scripts/tool.py"):
        profile = profile_for_path(path)
        assert profile.program_rules == frozenset(program_registry()), path


def test_perf_bench_profile_allowlists_wall_clock_only():
    profile = profile_for_path("benchmarks/perf/bench_engine.py")
    assert profile.name == "perf-bench"
    assert profile.rules == frozenset(registry()) - PERF_BENCH_ALLOWLIST
    assert PERF_BENCH_ALLOWLIST == frozenset({"SIM001"})


def test_benchmarks_outside_perf_stay_strict():
    # pytest-benchmark files do their timing through the fixture, not
    # wall-clock reads of their own; no allowlist applies.
    profile = profile_for_path("benchmarks/test_fig11_12_performance.py")
    assert profile.rules == frozenset(registry())


def test_perf_bench_fixture_pins_the_policy():
    fixture = FIXTURES / "perf_bench_wallclock.py"
    source = fixture.read_text()
    # Same source, two homes: clean under benchmarks/perf/, two SIM001
    # findings anywhere else.
    assert lint_source(source, "benchmarks/perf/bench_probe.py") == []
    strict = lint_source(source, "benchmarks/test_probe.py")
    assert [f.rule for f in strict] == ["SIM001", "SIM001"]


def test_policy_applies_when_linting_experiments_source():
    source = "import time\nwall = time.perf_counter()\n"
    assert lint_source(source, "src/repro/experiments/fake.py") == []
    assert lint_source(source, "src/repro/core/fake.py") != []


# ----------------------------------------------------------------------
# Errors and plumbing
# ----------------------------------------------------------------------
def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError, match="syntax error"):
        lint_source("def broken(:\n", "bad.py")


def test_unknown_rule_id_raises_lint_error():
    with pytest.raises(LintError, match="unknown rule"):
        lint_source("x = 1\n", "x.py", rule_ids=["NOPE999"])


def test_findings_are_sorted_and_renderable():
    source = "import time\nb = time.time()\na = time.time()\n"
    findings = lint_source(source, "x.py", rule_ids=["SIM001"])
    assert findings == sorted(findings)
    assert findings[0].render() == "x.py:2:4: SIM001 " + findings[0].message
    assert findings[0].to_dict()["rule"] == "SIM001"
    assert isinstance(findings[0], Finding)


def test_registry_metadata_complete():
    for rule_id, rule_cls in registry().items():
        assert rule_cls.id == rule_id
        assert rule_cls.title, rule_id
        assert rule_cls.rationale, rule_id
