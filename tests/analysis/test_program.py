"""Whole-program pass: import graph, worker reachability, PAR rules."""

from pathlib import Path

from repro.analysis.program import analyze_program, program_registry

FIXTURES = Path(__file__).parent / "fixtures" / "program"
PAR_RULES = frozenset(program_registry())


def _findings(tree: str):
    return analyze_program([FIXTURES / tree], PAR_RULES)


def test_program_registry_metadata():
    rules = program_registry()
    assert set(rules) == {"PAR001", "PAR002", "PAR003"}
    for rule_id, rule in rules.items():
        assert rule.id == rule_id
        assert rule.title
        assert rule.rationale


def test_flagged_tree_trips_all_three_rules():
    findings = _findings("par_flagged")
    by_rule = {}
    for finding in findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    # state.py: CACHE write + counter advance (PAR002), CACHE read (PAR001).
    assert len(by_rule["PAR002"]) == 2
    assert len(by_rule["PAR001"]) == 1
    assert all("state.py" in f.path for f in by_rule["PAR001"] + by_rule["PAR002"])
    # driver.py: lambda, nested function, live RNG kwarg, plus three
    # RNG-carrying class instances (inline, via local, via annotated
    # parameter).
    assert len(by_rule["PAR003"]) == 6
    assert all("driver.py" in f.path for f in by_rule["PAR003"])


def test_finding_messages_name_global_and_entry():
    findings = _findings("par_flagged")
    par002 = [f for f in findings if f.rule == "PAR002"]
    assert any("state.CACHE" in f.message for f in par002)
    assert all("entry:" in f.message for f in par002)


def test_clean_tree_is_clean():
    assert _findings("par_clean") == []


def test_inline_suppression_is_honoured():
    findings = _findings("par_suppressed")
    assert [f.rule for f in findings] == []


def test_rule_selection_filters():
    only_par003 = analyze_program([FIXTURES / "par_flagged"], {"PAR003"})
    assert {f.rule for f in only_par003} == {"PAR003"}
    assert len(only_par003) == 6


def test_rng_class_instances_in_plan_kwargs_are_flagged():
    findings = analyze_program([FIXTURES / "par_flagged"], {"PAR003"})
    class_findings = [f for f in findings if "holds live-RNG attribute" in f.message]
    assert len(class_findings) == 3
    # The inline and via-local SeededSampler sites both name the class,
    # its module, and the offending attribute.
    sampler = [f for f in class_findings if "SeededSampler" in f.message]
    assert len(sampler) == 2
    assert all("carrier.SeededSampler" in f.message for f in sampler)
    assert all("(rng)" in f.message for f in sampler)
    # The annotated-parameter carrier is caught through its type hint.
    carrier = [f for f in class_findings if "StreamCarrier" in f.message]
    assert len(carrier) == 1
    assert "(streams)" in carrier[0].message


def test_rng_free_class_instances_stay_quiet():
    # PlainConfig is passed as a plan kwarg in the same driver but holds
    # no RNG state: no finding may mention it.
    findings = analyze_program([FIXTURES / "par_flagged"], {"PAR003"})
    assert not any("PlainConfig" in f.message for f in findings)


def test_reads_of_unmutated_globals_stay_quiet():
    # par_clean's DEFAULTS dict is read from a worker path but never
    # mutated anywhere: effectively constant, so PAR001 stays quiet.
    findings = analyze_program([FIXTURES / "par_clean"], {"PAR001"})
    assert findings == []


def test_repo_trees_are_program_clean():
    # The acceptance gate: the real source tree (plus benchmarks and
    # tests, linked as one program so cross-tree entry points resolve)
    # carries no unsuppressed PAR finding.
    root = Path(__file__).resolve().parents[2]
    findings = analyze_program(
        [root / "src", root / "benchmarks", root / "tests"]
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"program pass found violations:\n{rendered}"
