"""Every rule: at least one flagged and one clean fixture."""

from pathlib import Path

import pytest

from repro.analysis import lint_file, registry

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (fixture that must trip it, fixture that must not).
RULE_FIXTURES = {
    "SIM001": ("sim001_flagged.py", "sim001_clean.py"),
    "SIM002": ("sim002_flagged.py", "sim002_clean.py"),
    "SIM003": ("sim003_flagged.py", "sim003_clean.py"),
    "SIM004": ("sim004_flagged.py", "sim004_clean.py"),
    "SIM005": ("sim005_flagged.py", "sim005_clean.py"),
    "SIM006": ("sim006_flagged.py", "sim006_clean.py"),
    "API001": ("api001_flagged.py", "api001_clean.py"),
    "API002": ("api002_flagged.py", "api002_clean.py"),
    "TEL001": ("tel001_flagged.py", "tel001_clean.py"),
    "TEL002": ("tel002_flagged.py", "tel002_clean.py"),
}


def test_every_registered_rule_has_fixtures():
    assert set(RULE_FIXTURES) == set(registry())


def test_facade_entrypoints_match_api_surface():
    """API002's hardcoded entrypoint set stays in sync with repro.api."""
    from repro import api
    from repro.analysis.rules.api import FACADE_ENTRYPOINTS

    assert FACADE_ENTRYPOINTS <= set(api.__all__)
    # Every run_*/simulate* entry point the facade exports is enforced.
    enforced = {
        name
        for name in api.__all__
        if name.startswith(("run_", "simulate"))
    }
    assert FACADE_ENTRYPOINTS == enforced


def test_facade_rule_policy_scope():
    """API002 binds outside repro (tests/benchmarks/examples), not inside."""
    from repro.analysis.policy import profile_for_path

    assert "API002" not in profile_for_path("src/repro/fleet/runner.py").rules
    assert "API002" not in profile_for_path("src/repro/api.py").rules
    assert "API002" not in profile_for_path(
        "src/repro/experiments/cli.py"
    ).rules
    assert "API002" not in profile_for_path("src/repro/sim/engine.py").rules
    assert "API002" in profile_for_path("tests/experiments/test_x.py").rules
    assert "API002" in profile_for_path("benchmarks/test_fig02.py").rules
    assert "API002" in profile_for_path("benchmarks/perf/bench_runner.py").rules
    assert "API002" in profile_for_path("examples/cost_efficiency.py").rules


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_flagged_fixture_trips_rule(rule_id):
    flagged, _ = RULE_FIXTURES[rule_id]
    findings = lint_file(FIXTURES / flagged, rule_ids=[rule_id])
    assert findings, f"{flagged} should trip {rule_id}"
    assert all(f.rule == rule_id for f in findings)
    assert all(f.line > 0 and f.message for f in findings)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_clean_fixture_passes_rule(rule_id):
    _, clean = RULE_FIXTURES[rule_id]
    findings = lint_file(FIXTURES / clean, rule_ids=[rule_id])
    assert findings == [], f"{clean} should be clean for {rule_id}: {findings}"


def test_flagged_fixture_counts():
    """Pin the exact number of violations each flagged fixture contains."""
    expected = {
        "SIM001": 3,  # time.time, time.perf_counter, datetime.now
        "SIM002": 3,  # np.random.seed, random.random, np.random.uniform
        "SIM003": 3,  # set expr loop, set-returning call loop, comprehension
        "SIM004": 2,  # except Exception, bare except
        "SIM005": 1,  # acquire without finally-release
        "SIM006": 2,  # == and != against env.now
        "API001": 3,  # two arg defaults + dataclass field
        "API002": 4,  # run_cell, run_performance_grid, run_deployment, run_fleet
        "TEL001": 4,  # const typo, literal typo, kind mismatch, bad label
        "TEL002": 3,  # const typo, literal typo, internal emit typo
    }
    for rule_id, count in expected.items():
        flagged, _ = RULE_FIXTURES[rule_id]
        findings = lint_file(FIXTURES / flagged, rule_ids=[rule_id])
        assert len(findings) == count, (rule_id, findings)
