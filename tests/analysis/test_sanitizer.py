"""Runtime worker sanitizer: drift detection around plan execution.

The headline test forks real pool workers (``jobs=2``) and proves a
planted module-global mutation raises :class:`SanitizerError` across
the process boundary; the rest pin the snapshot/diff machinery.
"""

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerError, diff, enabled, snapshot
from repro.experiments.parallel import RunPlan, run_many, shutdown_pool

from tests.analysis import _sanitizer_target as target

TARGET = "tests.analysis._sanitizer_target"


@pytest.fixture()
def sanitize_target(monkeypatch):
    # Workers inherit the environment at fork time, so the persistent
    # pool must be cold when the flags change -- and discarded again
    # afterwards so no later test runs on flag-carrying workers.
    shutdown_pool()
    monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
    monkeypatch.setenv(sanitizer.ENV_PREFIXES, TARGET)
    baseline = dict(target.STATE)
    yield
    shutdown_pool()
    target.STATE.clear()
    target.STATE.update(baseline)


# -- enablement ------------------------------------------------------------


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
    assert not enabled()
    monkeypatch.setenv(sanitizer.ENV_FLAG, "0")
    assert not enabled()
    monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
    assert enabled()


def test_disabled_guard_is_passthrough(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
    # Even a mutating plan runs unguarded when the flag is off.
    before = target.STATE["runs"]
    assert run_many([RunPlan(target.mutate_global, {"seed": 5})], jobs=1)
    target.STATE["runs"] = before


# -- snapshot / diff -------------------------------------------------------


def test_snapshot_digests_watched_module(sanitize_target):
    digests = snapshot()
    assert f"{TARGET}.STATE" in digests
    # Functions and dunders are skipped.
    assert f"{TARGET}.mutate_global" not in digests
    assert all(not key.endswith("__doc__") for key in digests)


def test_diff_names_mutated_created_deleted():
    before = {"m.a": "1", "m.b": "2", "m.gone": "3"}
    after = {"m.a": "1", "m.b": "9", "m.new": "4"}
    assert diff(before, after) == [
        "m.b (mutated)",
        "m.gone (deleted)",
        "m.new (created)",
    ]


def test_snapshot_detects_dict_mutation(sanitize_target):
    before = snapshot()
    target.STATE["runs"] += 1
    drifted = diff(before, snapshot())
    assert drifted == [f"{TARGET}.STATE (mutated)"]


# -- the fork-based proof --------------------------------------------------


def test_pool_worker_mutation_raises(sanitize_target):
    plans = [
        RunPlan(target.mutate_global, {"seed": s}, label=f"planted:{s}")
        for s in (1, 2)
    ]
    with pytest.raises(SanitizerError, match="STATE"):
        run_many(plans, jobs=2)


def test_sequential_mutation_raises_too(sanitize_target):
    with pytest.raises(SanitizerError, match="planted"):
        run_many([RunPlan(target.mutate_global, {"seed": 1}, label="planted")],
                 jobs=1)


def test_well_behaved_plans_pass(sanitize_target):
    plans = [
        RunPlan(target.well_behaved, {"seed": s}, label=f"ok:{s}")
        for s in (1, 2, 3)
    ]
    assert run_many(plans, jobs=2) == [2, 4, 6]
    assert run_many(plans, jobs=1) == [2, 4, 6]


def test_guard_survives_pool_reuse(sanitize_target):
    # The pool persists across grids; the guard is per-plan, so a clean
    # first grid must not blunt detection on the second grid served by
    # the very same workers.
    ok = [RunPlan(target.well_behaved, {"seed": s}) for s in (1, 2)]
    assert run_many(ok, jobs=2) == [2, 4]
    plans = [
        RunPlan(target.mutate_global, {"seed": s}, label=f"planted:{s}")
        for s in (1, 2)
    ]
    with pytest.raises(SanitizerError, match="STATE"):
        run_many(plans, jobs=2)
