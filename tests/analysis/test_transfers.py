"""Checked ``transfers=`` ownership annotations (SIM005)."""

from pathlib import Path

from repro.analysis import lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def test_verified_transfers_are_clean():
    assert lint_file(FIXTURES / "transfers_ok.py", rule_ids=["SIM005"]) == []


def test_bad_annotations_are_reported():
    findings = lint_file(FIXTURES / "transfers_flagged.py", rule_ids=["SIM005"])
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("must name the acquired resource" in m for m in messages)
    assert any("no matching" in m and "release()" in m for m in messages)
    assert any("matches no acquire()" in m for m in messages)


def test_trailing_annotation_targets_its_own_line():
    source = (
        "def p(pool):\n"
        "    yield pool.acquire()  # ursalint: transfers=pool -- handoff\n"
        "\n"
        "def q(pool):\n"
        "    try:\n"
        "        yield 1\n"
        "    finally:\n"
        "        pool.release()\n"
    )
    assert lint_source(source, "x.py", rule_ids=["SIM005"]) == []


def test_annotation_does_not_silence_other_acquires():
    source = (
        "def p(pool, other):\n"
        "    # ursalint: transfers=pool -- handoff\n"
        "    yield pool.acquire()\n"
        "    yield other.acquire()\n"
        "\n"
        "def q(pool):\n"
        "    try:\n"
        "        yield 1\n"
        "    finally:\n"
        "        pool.release()\n"
    )
    findings = lint_source(source, "x.py", rule_ids=["SIM005"])
    assert [f.line for f in findings] == [4]
    assert "other.acquire()" in findings[0].message


def test_multi_receiver_annotation():
    source = (
        "def p(a, b):\n"
        "    # ursalint: transfers=a,b -- both handed off\n"
        "    yield a.acquire()\n"
        "\n"
        "def q(a, b):\n"
        "    a.release()\n"
        "    b.release()\n"
    )
    assert lint_source(source, "x.py", rule_ids=["SIM005"]) == []


def test_plain_disable_still_works():
    source = (
        "def p(pool):\n"
        "    yield pool.acquire()  # ursalint: disable=SIM005 -- legacy\n"
    )
    assert lint_source(source, "x.py", rule_ids=["SIM005"]) == []
