"""The CI gate: the entire source tree passes ursalint.

If this test fails, either fix the violation or -- for an intentional,
explainable case -- add ``# ursalint: disable=RULE -- reason`` on the
offending line and document it (see docs/static_analysis.md).
"""

from pathlib import Path

from repro.analysis import lint_paths

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
BENCHMARKS = ROOT / "benchmarks"
TESTS = ROOT / "tests"


def test_source_tree_is_clean():
    findings, files_checked = lint_paths([SRC])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"ursalint found violations:\n{rendered}"
    # Sanity: the walk really covered the tree (not an empty directory).
    assert files_checked > 80


def test_benchmarks_tree_is_clean():
    # benchmarks/perf/ gets the perf-bench profile (SIM001 allowlisted);
    # the pytest-benchmark files are linted strict.
    findings, files_checked = lint_paths([BENCHMARKS])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"ursalint found violations:\n{rendered}"
    assert files_checked > 10


def test_tests_tree_is_clean():
    # tests/ gets the tests profile (SIM005/SIM006/TEL001 allowlisted)
    # and tests/analysis/fixtures/ the empty lint-fixtures profile --
    # everything else in here is held to the determinism rules too.
    findings, files_checked = lint_paths([TESTS])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"ursalint found violations:\n{rendered}"
    assert files_checked > 50
