"""Tests for the benchmark application specs (Tables II-IV topologies)."""

import pytest

from repro.apps import (
    CHAIN_CLASS,
    MEDIA_SERVICE_SLAS,
    SOCIAL_NETWORK_SLAS,
    build_chain_spec,
    build_media_service_spec,
    build_social_network_spec,
    build_vanilla_social_network_spec,
    build_video_pipeline_spec,
    swap_object_detect_model,
    tier_name,
)
from repro.net.messages import CallMode


def test_social_network_matches_table2():
    spec = build_social_network_spec()
    slas = spec.sla_table()
    assert set(slas) == set(SOCIAL_NETWORK_SLAS)
    for name, target in SOCIAL_NETWORK_SLAS.items():
        assert slas[name].target_s == target
        assert slas[name].percentile == 99.0


def test_social_network_uses_mqs_and_rpcs():
    spec = build_social_network_spec()
    modes = {
        call.mode
        for rc in spec.request_classes
        for call in rc.tree.walk()
    }
    assert CallMode.RPC in modes
    assert CallMode.MQ in modes


def test_vanilla_variant_drops_ml_services():
    full = build_social_network_spec()
    vanilla = build_vanilla_social_network_spec()
    full_names = {s.name for s in full.services}
    vanilla_names = {s.name for s in vanilla.services}
    assert "sentiment-ml" in full_names and "object-detect-ml" in full_names
    assert "sentiment-ml" not in vanilla_names
    assert "object-detect-ml" not in vanilla_names
    assert {rc.name for rc in vanilla.request_classes} < {
        rc.name for rc in full.request_classes
    }


def test_media_service_matches_table3():
    spec = build_media_service_spec()
    slas = spec.sla_table()
    assert set(slas) == set(MEDIA_SERVICE_SLAS)
    for name, target in MEDIA_SERVICE_SLAS.items():
        assert slas[name].target_s == target


def test_video_pipeline_matches_table4():
    spec = build_video_pipeline_spec()
    slas = spec.sla_table()
    assert slas["high-priority"].percentile == 99.0
    assert slas["high-priority"].target_s == 20.0
    assert slas["low-priority"].percentile == 50.0
    assert slas["low-priority"].target_s == 4.0


def test_video_pipeline_priorities():
    spec = build_video_pipeline_spec()
    high = spec.request_class("high-priority")
    low = spec.request_class("low-priority")
    assert high.priority < low.priority
    # All stage edges are MQs.
    assert all(c.mode == CallMode.MQ for c in high.tree.walk())
    assert high.tree.depth() == 3


def test_object_detect_path_matches_fig14():
    """object-detect goes through frontend, image store, post service."""
    spec = build_social_network_spec()
    services = spec.request_class("object-detect").services()
    for name in ("frontend", "image-store", "post-storage", "object-detect-ml"):
        assert name in services


def test_swap_object_detect_model_lightens_handler():
    spec = build_social_network_spec()
    before = spec.service("object-detect-ml").handlers["object-detect"]
    swapped = swap_object_detect_model(spec)
    after = swapped.service("object-detect-ml").handlers["object-detect"]
    assert after.mean < before.mean / 2
    # Other services untouched.
    assert swapped.service("frontend") == spec.service("frontend")


def test_chain_spec_structure():
    spec = build_chain_spec(CallMode.RPC, tiers=5)
    assert len(spec.services) == 5
    rc = spec.request_class(CHAIN_CLASS)
    assert rc.tree.depth() == 5
    assert rc.tree.service == tier_name(1)
    leafward = rc.tree
    while leafward.children:
        leafward = leafward.children[0]
    assert leafward.service == tier_name(5)


@pytest.mark.parametrize("mode", [CallMode.RPC, CallMode.EVENT, CallMode.MQ])
def test_chain_edge_modes(mode):
    spec = build_chain_spec(mode, tiers=4)
    rc = spec.request_class(CHAIN_CLASS)
    # Root is client-facing RPC; internal edges use the requested mode.
    assert rc.tree.mode == CallMode.RPC
    for call in rc.tree.walk()[1:]:
        assert call.mode == mode


def test_chain_needs_two_tiers():
    with pytest.raises(ValueError):
        build_chain_spec(CallMode.RPC, tiers=1)


def test_all_specs_validate():
    for builder in (
        build_social_network_spec,
        build_vanilla_social_network_spec,
        build_media_service_spec,
        build_video_pipeline_spec,
    ):
        spec = builder()
        assert spec.services and spec.request_classes
