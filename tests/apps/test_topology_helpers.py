"""Tests for RequestClass/AppSpec helpers and windowed accounting."""

import pytest

from repro.apps.topology import Application, AppSpec, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError, TopologyError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, RandomStreams


def test_access_counts_multiplicative():
    rc = RequestClass(
        "r",
        Call(
            "a",
            children=(
                Call("b", repeat=2, children=(Call("c", repeat=3),)),
                Call("c"),
            ),
        ),
        SlaSpec(99, 1.0),
    )
    counts = rc.access_counts()
    assert counts == {"a": 1, "b": 2, "c": 7}  # 2*3 via b, +1 direct


def test_sla_spec_validation():
    with pytest.raises(ConfigurationError):
        SlaSpec(0, 1.0)
    with pytest.raises(ConfigurationError):
        SlaSpec(100, 1.0)
    with pytest.raises(ConfigurationError):
        SlaSpec(99, 0)


def test_with_service_replaces_spec():
    spec = AppSpec(
        "app",
        services=(
            ServiceSpec("a", cpus_per_replica=1, handlers={"r": Constant(0.01)}),
        ),
        request_classes=(RequestClass("r", Call("a"), SlaSpec(99, 1.0)),),
    )
    replacement = ServiceSpec("a", cpus_per_replica=2, handlers={"r": Constant(0.02)})
    updated = spec.with_service(replacement)
    assert updated.service("a").cpus_per_replica == 2
    assert spec.service("a").cpus_per_replica == 1  # original untouched
    with pytest.raises(TopologyError):
        spec.with_service(
            ServiceSpec("ghost", cpus_per_replica=1, handlers={"r": Constant(1)})
        )


def test_duplicate_names_rejected():
    svc = ServiceSpec("a", cpus_per_replica=1, handlers={"r": Constant(0.01)})
    rc = RequestClass("r", Call("a"), SlaSpec(99, 1.0))
    with pytest.raises(ConfigurationError):
        AppSpec("app", services=(svc, svc), request_classes=(rc,))
    with pytest.raises(ConfigurationError):
        AppSpec("app", services=(svc,), request_classes=(rc, rc))


def test_windowed_violation_rate_handles_p50_sla():
    """A p50 SLA must be evaluated as a windowed percentile check."""
    spec = AppSpec(
        "app",
        services=(
            ServiceSpec("a", cpus_per_replica=1, handlers={"r": Constant(0.1)}),
        ),
        # Median SLA of 150 ms: every request takes ~100 ms, so the p50
        # check passes even though some requests would exceed a naive
        # per-request threshold.
        request_classes=(
            RequestClass("r", Call("a"), SlaSpec(50.0, 0.150)),
        ),
    )
    env = Environment()
    app = Application(
        spec,
        env=env,
        cluster=Cluster(env, nodes=[Node("n", 16, 32)]),
        streams=RandomStreams(0),
        initial_replicas=1,
    )
    env.run(until=10)
    for _ in range(40):
        app.submit("r")
        env.run(until=env.now + 1.0)
    env.run(until=120)
    assert app.windowed_violation_rate(0, 120) == 0.0


def test_request_ids_are_run_local_and_sequential():
    """Ids come from the Application's own counter (0, 1, 2, ...).

    Run-local assignment keeps ids deterministic for any process/pool
    layout -- the old module-level ``itertools.count`` made them depend
    on how many requests *other* runs in the same process had created.
    """
    spec = AppSpec(
        "app",
        services=(
            ServiceSpec("a", cpus_per_replica=1, handlers={"r": Constant(0.01)}),
        ),
        request_classes=(RequestClass("r", Call("a"), SlaSpec(99, 1.0)),),
    )

    def fresh_app():
        env = Environment()
        app = Application(
            spec,
            env=env,
            cluster=Cluster(env, nodes=[Node("n", 16, 32)]),
            streams=RandomStreams(0),
            initial_replicas=1,
        )
        env.run(until=1)
        return app

    first = fresh_app()
    ids = [first.submit("r")[0].request_id for _ in range(5)]
    assert ids == [0, 1, 2, 3, 4]
    # A second application starts from 0 again: no cross-run bleed.
    assert fresh_app().submit("r")[0].request_id == 0


def test_mean_cpu_allocation_sums_services():
    spec = AppSpec(
        "app",
        services=(
            ServiceSpec("a", cpus_per_replica=2, handlers={"r": Constant(0.01)}),
            ServiceSpec("b", cpus_per_replica=3, handlers={"r": Constant(0.01)}),
        ),
        request_classes=(
            RequestClass("r", Call("a", children=(Call("b"),)), SlaSpec(99, 1.0)),
        ),
    )
    env = Environment()
    app = Application(
        spec,
        env=env,
        cluster=Cluster(env, nodes=[Node("n", 16, 32)]),
        streams=RandomStreams(0),
        initial_replicas=1,
    )
    env.run(until=100)
    assert app.mean_cpu_allocation(20, 100) == pytest.approx(5.0, abs=0.3)


def test_rpc_called_services_excludes_mq_only():
    from repro.apps import build_social_network_spec, build_video_pipeline_spec

    social = build_social_network_spec().rpc_called_services()
    # MQ-consumed ML services are not RPC-called...
    assert "sentiment-ml" not in social
    assert "object-detect-ml" not in social
    assert "timeline-update" not in social  # MQ root
    # ...but RPC-chained services are, including datastores.
    for name in ("frontend", "image-store", "post-storage", "redis-post",
                 "social-graph"):
        assert name in social
    # Sorted tuple: deterministic to iterate, no SIM003 hazard.
    assert social == tuple(sorted(social))
    # The pure-MQ pipeline has no RPC-called services at all.
    assert build_video_pipeline_spec().rpc_called_services() == ()
