"""Tests for step autoscaling (Auto-a / Auto-b)."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.baselines.autoscaler import StepAutoscaler, auto_a, auto_b
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Environment, LogNormal, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def build_app(env, replicas=1):
    spec = AppSpec(
        "one",
        services=(
            ServiceSpec(
                "svc", cpus_per_replica=1, handlers={"r": LogNormal(0.01, 0.4)}
            ),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 1.0)),),
    )
    cluster = Cluster(env, nodes=[Node("n", 64, 128)])
    return Application(
        spec, env=env, cluster=cluster, streams=RandomStreams(3),
        initial_replicas=replicas,
    )


def test_configs():
    a, b = auto_a(), auto_b()
    assert a.scale_out_above == 0.60 and a.scale_in_below == 0.30
    assert b.scale_out_above < a.scale_out_above  # tuned = more eager


def test_scales_out_under_high_utilization():
    env = Environment()
    app = build_app(env, replicas=1)
    scaler = StepAutoscaler(app, auto_a())
    scaler.start()
    # 80 rps x 10ms = 0.8 busy cores on 1 core: util > 60%.
    LoadGenerator(app, ConstantLoad(80.0), RequestMix({"r": 1.0}),
                  RandomStreams(4), stop_at_s=400).start()
    env.run(until=400)
    assert app.services["svc"].deployment.desired_replicas >= 2
    assert scaler.decisions > 0


def test_scales_in_when_idle():
    env = Environment()
    app = build_app(env, replicas=4)
    scaler = StepAutoscaler(app, auto_a())
    scaler.start()
    LoadGenerator(app, ConstantLoad(5.0), RequestMix({"r": 1.0}),
                  RandomStreams(5), stop_at_s=400).start()
    env.run(until=400)
    assert app.services["svc"].deployment.desired_replicas < 4


def test_respects_min_max():
    env = Environment()
    app = build_app(env, replicas=1)
    scaler = StepAutoscaler(app, auto_a(), min_replicas=1, max_replicas=2)
    scaler.start()
    LoadGenerator(app, ConstantLoad(300.0), RequestMix({"r": 1.0}),
                  RandomStreams(6), stop_at_s=400).start()
    env.run(until=400)
    assert app.services["svc"].deployment.desired_replicas <= 2


def test_double_start_rejected():
    env = Environment()
    app = build_app(env)
    scaler = StepAutoscaler(app)
    scaler.start()
    with pytest.raises(ConfigurationError):
        scaler.start()


def test_decide_holds_without_data():
    env = Environment()
    app = build_app(env)
    scaler = StepAutoscaler(app)
    assert scaler.decide("svc") is None  # no utilisation samples yet
