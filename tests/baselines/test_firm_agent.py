"""Tests for Firm's replay buffer and DDPG agent."""

import numpy as np
import pytest

from repro.baselines.firm import STATE_DIM, FirmAgent, ReplayBuffer
from repro.errors import ConfigurationError


def test_replay_buffer_push_and_sample():
    buf = ReplayBuffer(capacity=10, state_dim=2, seed=0)
    for i in range(15):
        buf.push(np.array([i, i]), 0.5, -1.0, np.array([i + 1, i + 1]))
    assert len(buf) == 10  # ring buffer capped
    s, a, r, s2 = buf.sample(4)
    assert s.shape == (4, 2)
    assert a.shape == (4, 1)
    assert np.all(r == -1.0)


def test_replay_buffer_validation():
    with pytest.raises(ConfigurationError):
        ReplayBuffer(0, 2)
    buf = ReplayBuffer(4, 2)
    with pytest.raises(ConfigurationError):
        buf.sample(1)


def test_agent_action_bounds():
    agent = FirmAgent("svc", seed=0)
    for _ in range(20):
        state = np.random.default_rng(0).uniform(0, 1, STATE_DIM)
        action = agent.act(state, noise_std=1.0)
        assert -1.0 <= action <= 1.0


def test_action_to_delta_mapping():
    agent = FirmAgent("svc", max_delta=2)
    assert agent.action_to_delta(1.0) == 2
    assert agent.action_to_delta(-1.0) == -2
    assert agent.action_to_delta(0.0) == 0
    assert agent.action_to_delta(0.6) == 1


def test_reward_tradeoff():
    agent = FirmAgent("svc", sla_weight=1.0, resource_weight=0.7)
    # Violation with low usage vs no violation with high usage: the
    # resource weighting can make the violating state comparable -- the
    # paper's criticism of Firm.
    r_violation_cheap = agent.reward(True, cpus_used=1, cpus_reference=10)
    r_ok_expensive = agent.reward(False, cpus_used=14, cpus_reference=10)
    assert r_violation_cheap < 0
    assert r_ok_expensive < 0
    assert abs(r_violation_cheap - r_ok_expensive) < 0.2


def test_agent_learns_to_prefer_scaling_out_under_pressure():
    """Reward +1 for positive action in high-pressure states, -1 otherwise:
    the agent's policy should move toward positive actions there."""
    agent = FirmAgent("svc", seed=1, lr_actor=5e-3, lr_critic=5e-3)
    rng = np.random.default_rng(2)
    high_pressure = np.array([0.9, 0.5, 1.0, 0.1])
    before = agent.act(high_pressure)
    for _ in range(600):
        action = float(rng.uniform(-1, 1))
        reward = 1.0 if action > 0 else -1.0
        agent.remember(high_pressure, action, reward, high_pressure)
        agent.update(batch_size=32)
    after = agent.act(high_pressure)
    assert after > before
    assert after > 0.2


def test_update_without_data_is_noop():
    agent = FirmAgent("svc")
    assert agent.update() == 0.0
    assert agent.updates == 0
