"""Integration tests for Firm's trainer and deployment controller."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.baselines.firm import FirmManager, train_firm_agents
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Environment, LogNormal, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def tiny_spec():
    return AppSpec(
        "tiny",
        services=(
            ServiceSpec("front", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.002, 0.4)}),
            ServiceSpec("work", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.010, 0.5)}),
        ),
        request_classes=(
            RequestClass("req", Call("front", CallMode.RPC, (Call("work"),)),
                         SlaSpec(99.0, 0.15)),
        ),
    )


@pytest.fixture(scope="module")
def trained():
    return train_firm_agents(
        tiny_spec(), RequestMix({"req": 1.0}), rps=60.0,
        streams=RandomStreams(51), n_samples=40, window_s=15.0,
    )


def test_training_returns_agent_per_service(trained):
    agents, sim_time = trained
    assert set(agents) == {"front", "work"}
    assert sim_time > 0
    # Agents actually learned from transitions.
    assert all(len(a.buffer) > 10 for a in agents.values())
    assert all(a.updates > 0 for a in agents.values())


def test_deployment_with_trained_agents(trained):
    agents, _ = trained
    env = Environment()
    app = Application(
        tiny_spec(), env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(53), initial_replicas=2,
    )
    manager = FirmManager(app, agents, control_interval_s=20.0)
    manager.initialize(2)
    manager.start()
    LoadGenerator(app, ConstantLoad(60.0), RequestMix({"req": 1.0}),
                  RandomStreams(54), stop_at_s=300).start()
    env.run(until=300)
    assert manager.decisions > 0
    assert app.services["work"].deployment.desired_replicas >= 1


def test_manager_requires_agent_per_service(trained):
    agents, _ = trained
    env = Environment()
    app = Application(
        tiny_spec(), env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(55), initial_replicas=1,
    )
    with pytest.raises(ConfigurationError):
        FirmManager(app, {"front": agents["front"]})


def test_timing_probes(trained):
    agents, _ = trained
    env = Environment()
    app = Application(
        tiny_spec(), env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(56), initial_replicas=1,
    )
    env.run(until=30)
    manager = FirmManager(app, agents)
    assert manager.time_decision(repeats=3) > 0
    assert manager.time_update(iterations=1) >= 0
