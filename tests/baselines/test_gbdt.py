"""Tests for the from-scratch gradient-boosted classifier."""

import numpy as np
import pytest

from repro.baselines.sinan.gbdt import GradientBoostedClassifier
from repro.errors import ConfigurationError


def test_learns_linear_boundary():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(500, 3))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    model = GradientBoostedClassifier(n_trees=40, max_depth=3)
    model.fit(x, y)
    assert model.accuracy(x, y) > 0.92


def test_learns_xor():
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, size=(600, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    model = GradientBoostedClassifier(n_trees=60, max_depth=4)
    model.fit(x, y)
    assert model.accuracy(x, y) > 0.9


def test_probabilities_in_range():
    rng = np.random.default_rng(2)
    x = rng.uniform(-1, 1, size=(200, 2))
    y = (x[:, 0] > 0).astype(int)
    model = GradientBoostedClassifier(n_trees=20)
    model.fit(x, y)
    p = model.predict_proba(x)
    assert np.all((p >= 0) & (p <= 1))
    # Discriminative: positives should get higher probabilities.
    assert p[y == 1].mean() > p[y == 0].mean() + 0.3


def test_single_class_degenerate():
    x = np.random.default_rng(3).uniform(0, 1, size=(50, 2))
    y = np.zeros(50)
    model = GradientBoostedClassifier(n_trees=5)
    model.fit(x, y)
    assert model.predict_proba(x).max() < 0.5


def test_validation():
    with pytest.raises(ConfigurationError):
        GradientBoostedClassifier(n_trees=0)
    with pytest.raises(ConfigurationError):
        GradientBoostedClassifier(learning_rate=0)
    model = GradientBoostedClassifier(n_trees=2)
    with pytest.raises(ConfigurationError):
        model.fit(np.zeros((3, 2)), np.array([0, 1, 2]))
    with pytest.raises(ConfigurationError):
        model.fit(np.zeros((3, 2)), np.array([0, 1]))
