"""Tests for the numpy MLP regressor."""

import numpy as np
import pytest

from repro.baselines.sinan.nn import MlpRegressor
from repro.errors import ConfigurationError


def test_learns_linear_function():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(600, 4))
    y = x @ np.array([1.0, -2.0, 0.5, 3.0]) + 1.0
    model = MlpRegressor(4, 1, hidden=(32, 32), seed=0)
    losses = model.fit(x, y, epochs=80, batch_size=64)
    assert losses[-1] < losses[0] / 10
    pred = model.predict(x[:50]).ravel()
    rmse = np.sqrt(np.mean((pred - y[:50]) ** 2))
    assert rmse < 0.3


def test_learns_nonlinear_function():
    rng = np.random.default_rng(1)
    x = rng.uniform(-2, 2, size=(800, 2))
    y = np.sin(x[:, 0]) + x[:, 1] ** 2
    model = MlpRegressor(2, 1, hidden=(64, 64), seed=1)
    model.fit(x, y, epochs=150, batch_size=64)
    pred = model.predict(x).ravel()
    rmse = np.sqrt(np.mean((pred - y) ** 2))
    assert rmse < 0.35


def test_multi_output():
    rng = np.random.default_rng(2)
    x = rng.uniform(-1, 1, size=(400, 3))
    y = np.stack([x[:, 0] + x[:, 1], x[:, 2] * 2], axis=1)
    model = MlpRegressor(3, 2, hidden=(32,), seed=2)
    model.fit(x, y, epochs=100)
    pred = model.predict(x)
    assert pred.shape == (400, 2)
    assert np.mean((pred - y) ** 2) < 0.2


def test_input_validation():
    with pytest.raises(ConfigurationError):
        MlpRegressor(0, 1)
    with pytest.raises(ConfigurationError):
        MlpRegressor(1, 1, hidden=())
    model = MlpRegressor(2, 1)
    with pytest.raises(ConfigurationError):
        model.fit(np.zeros((3, 2)), np.zeros(2))
    with pytest.raises(ConfigurationError):
        model.fit(np.zeros((1, 2)), np.zeros(1))
    with pytest.raises(ConfigurationError):
        model.predict(np.zeros((2, 3)))


def test_parameter_count_is_representative():
    """Sinan's model should be big enough that inference cost shows up."""
    model = MlpRegressor(20, 5)
    assert model.num_parameters > 50_000
