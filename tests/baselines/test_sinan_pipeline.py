"""Integration tests for Sinan's data collection, training and scheduler."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.baselines.sinan import (
    SinanDataCollector,
    SinanManager,
    SinanPredictor,
)
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError, ExplorationError
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Environment, LogNormal, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def tiny_spec():
    return AppSpec(
        "tiny",
        services=(
            ServiceSpec("front", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.002, 0.4)}),
            ServiceSpec("work", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.010, 0.5)}),
        ),
        request_classes=(
            # A tight SLA so underprovisioned windows actually violate.
            RequestClass("req", Call("front", CallMode.RPC, (Call("work"),)),
                         SlaSpec(99.0, 0.06)),
        ),
    )


@pytest.fixture(scope="module")
def dataset():
    collector = SinanDataCollector(
        RandomStreams(31), window_s=10.0, settle_s=5.0
    )
    return collector.collect(tiny_spec(), RequestMix({"req": 1.0}),
                             rps=80.0, n_samples=60)


def test_collection_is_balanced(dataset):
    assert dataset.size == 60
    # The 1:1 balancing keeps the ratio in a broad band around 0.5.
    assert 0.15 <= dataset.violation_ratio() <= 0.85
    assert dataset.collection_time_s > 0


def test_feature_schema_round_trip(dataset):
    schema = dataset.schema
    x, y, v = dataset.arrays()
    assert x.shape == (60, schema.dim)
    assert y.shape[1] == 1  # one request class
    assert set(v) <= {0, 1}
    replicas = schema.replicas_of(x[0])
    assert set(replicas) == {"front", "work"}


@pytest.fixture(scope="module")
def predictor(dataset):
    return SinanPredictor.train(dataset, epochs=25)


def test_training_produces_usable_models(predictor, dataset):
    x, y, v = dataset.arrays()
    pred = predictor.predict_latency(x[:10])
    assert pred.shape == (10, 1)
    assert (pred >= 0).all()
    proba = predictor.predict_violation_proba(x[:10])
    assert ((proba >= 0) & (proba <= 1)).all()
    # Better than coin-flipping on its own training distribution.
    assert predictor.violation_accuracy >= 0.4


def test_scheduler_decides_and_scales(predictor):
    env = Environment()
    app = Application(
        tiny_spec(), env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(33), initial_replicas=2,
    )
    manager = SinanManager(app, predictor, control_interval_s=20.0)
    manager.initialize(2)
    manager.start()
    LoadGenerator(app, ConstantLoad(60.0), RequestMix({"req": 1.0}),
                  RandomStreams(34), stop_at_s=300).start()
    env.run(until=300)
    assert manager.decisions > 0
    # The app keeps serving; the scheduler never drove replicas to zero.
    assert app.services["work"].deployment.desired_replicas >= 1


def test_manager_validation(predictor):
    env = Environment()
    app = Application(
        tiny_spec(), env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(35), initial_replicas=1,
    )
    with pytest.raises(ConfigurationError):
        SinanManager(app, predictor, candidates=2)


def test_collector_validation():
    collector = SinanDataCollector(RandomStreams(0))
    with pytest.raises(ExplorationError):
        collector.collect(tiny_spec(), RequestMix({"req": 1.0}), 10.0, n_samples=1)


def test_training_needs_samples(dataset):
    import dataclasses

    small = dataclasses.replace(dataset, samples=dataset.samples[:5])
    with pytest.raises(ConfigurationError):
        SinanPredictor.train(small)
