"""Tests for deployments, pod lifecycle and the cluster facade."""

import pytest

from repro.cluster import Cluster, Node, PodState
from repro.errors import SchedulingError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    return Cluster(env, nodes=[Node("a", 32, 64), Node("b", 32, 64)])


def test_initial_replicas_become_running(env, cluster):
    dep = cluster.create_deployment("svc", cpus_per_replica=2, replicas=3)
    assert dep.replicas == 0  # still pending
    env.run(until=10)
    assert dep.replicas == 3
    assert dep.allocated_cpus == 6


def test_startup_delay_respected(env, cluster):
    dep = cluster.create_deployment(
        "svc", cpus_per_replica=1, replicas=1, startup_delay_s=7.0
    )
    env.run(until=6.9)
    assert dep.replicas == 0
    env.run(until=7.1)
    assert dep.replicas == 1


def test_running_callback_invoked(env, cluster):
    seen = []
    cluster.create_deployment(
        "svc", cpus_per_replica=1, replicas=2, on_pod_running=seen.append
    )
    env.run(until=10)
    assert len(seen) == 2
    assert all(p.state == PodState.RUNNING for p in seen)


def test_scale_up_and_down(env, cluster):
    dep = cluster.create_deployment("svc", cpus_per_replica=2, replicas=2)
    env.run(until=10)
    cluster.scale("svc", 5)
    env.run(until=20)
    assert dep.replicas == 5
    cluster.scale("svc", 1)
    env.run(until=30)
    assert dep.replicas == 1
    assert dep.allocated_cpus == 2


def test_scale_down_waits_for_drain(env, cluster):
    stopping = []
    dep = cluster.create_deployment(
        "svc",
        cpus_per_replica=4,
        replicas=2,
        on_pod_stopping=stopping.append,
    )
    env.run(until=10)
    cluster.scale("svc", 1)
    env.run(until=11)
    # Pod resources held while draining.
    assert len(stopping) == 1
    assert dep.allocated_cpus == 8
    stopping[0].drained.succeed()
    env.run(until=12)
    assert dep.allocated_cpus == 4


def test_scale_down_cancels_pending_first(env, cluster):
    dep = cluster.create_deployment(
        "svc", cpus_per_replica=1, replicas=1, startup_delay_s=5.0
    )
    env.run(until=10)
    dep.scale_to(3)  # two new pending pods
    env.run(until=11)  # still pending (delay 5)
    dep.scale_to(1)
    env.run(until=30)
    assert dep.replicas == 1
    assert dep.allocated_cpus == 1


def test_scale_by(env, cluster):
    dep = cluster.create_deployment("svc", cpus_per_replica=1, replicas=2)
    env.run(until=10)
    dep.scale_by(2)
    env.run(until=20)
    assert dep.replicas == 4
    dep.scale_by(-10)
    env.run(until=30)
    assert dep.replicas == 0


def test_negative_scale_rejected(env, cluster):
    cluster.create_deployment("svc", cpus_per_replica=1)
    with pytest.raises(SchedulingError):
        cluster.scale("svc", -1)


def test_duplicate_deployment_rejected(env, cluster):
    cluster.create_deployment("svc", cpus_per_replica=1)
    with pytest.raises(SchedulingError):
        cluster.create_deployment("svc", cpus_per_replica=1)


def test_unknown_deployment_rejected(cluster):
    with pytest.raises(SchedulingError):
        cluster.scale("nope", 1)


def test_cluster_capacity_enforced(env):
    cluster = Cluster(env, nodes=[Node("a", 4, 8)])
    with pytest.raises(SchedulingError):
        cluster.create_deployment("svc", cpus_per_replica=2, replicas=3)


def test_allocated_cpus_totals(env, cluster):
    cluster.create_deployment("a", cpus_per_replica=2, replicas=2)
    cluster.create_deployment("b", cpus_per_replica=3, replicas=1)
    env.run(until=10)
    assert cluster.allocated_cpus("a") == 4
    assert cluster.allocated_cpus("b") == 3
    assert cluster.allocated_cpus() == 7
    assert cluster.free_cpus() == 64 - 7


def test_fractional_cpu_rejected(env, cluster):
    with pytest.raises(SchedulingError):
        cluster.create_deployment("svc", cpus_per_replica=0)
