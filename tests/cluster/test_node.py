"""Tests for node resource accounting."""

import pytest

from repro.cluster.node import Node, default_testbed_nodes
from repro.errors import SchedulingError


def test_allocation_and_free():
    node = Node("n", cpus=8, memory_gb=16)
    node.allocate(4, 8.0)
    assert node.cpus_free == 4
    assert node.memory_free_gb == pytest.approx(8.0)
    node.free(4, 8.0)
    assert node.cpus_free == 8


def test_fits():
    node = Node("n", cpus=4, memory_gb=8)
    assert node.fits(4, 8.0)
    assert not node.fits(5, 1.0)
    assert not node.fits(1, 9.0)


def test_over_allocation_rejected():
    node = Node("n", cpus=2, memory_gb=4)
    with pytest.raises(SchedulingError):
        node.allocate(3, 1.0)
    with pytest.raises(SchedulingError):
        node.allocate(1, 5.0)


def test_zero_cpu_pod_rejected():
    node = Node("n", cpus=2, memory_gb=4)
    with pytest.raises(SchedulingError):
        node.allocate(0, 1.0)


def test_over_free_rejected():
    node = Node("n", cpus=2, memory_gb=4)
    node.allocate(1, 1.0)
    with pytest.raises(SchedulingError):
        node.free(2, 1.0)


def test_invalid_node_specs():
    with pytest.raises(ValueError):
        Node("n", cpus=0, memory_gb=4)
    with pytest.raises(ValueError):
        Node("n", cpus=4, memory_gb=0)


def test_default_testbed_matches_paper():
    nodes = default_testbed_nodes()
    assert len(nodes) == 8
    assert all(40 <= n.cpus <= 88 for n in nodes)
    assert all(126 <= n.memory_gb <= 188 for n in nodes)
