"""Property-based cluster invariants under random scaling sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, Node
from repro.errors import SchedulingError
from repro.sim import Environment


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 12), st.floats(0.5, 20.0)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_allocation_never_exceeds_capacity(ops):
    """Random scale/advance sequences keep node accounting consistent."""
    env = Environment()
    cluster = Cluster(env, nodes=[Node("a", 24, 48), Node("b", 24, 48)])
    names = ["x", "y", "z"]
    for name in names:
        cluster.create_deployment(name, cpus_per_replica=2, replicas=0,
                                  startup_delay_s=2.0)
    for which, replicas, advance in ops:
        name = names[which]
        try:
            cluster.scale(name, replicas)
        except SchedulingError:
            pass  # over capacity: rejected atomically, state unchanged
        env.run(until=env.now + advance)
        # Invariants after every step:
        total_allocated = cluster.allocated_cpus()
        assert 0 <= total_allocated <= cluster.total_cpus()
        assert cluster.free_cpus() == cluster.total_cpus() - total_allocated
        for node in cluster.nodes:
            assert 0 <= node.cpus_free <= node.cpus
            assert -1e9 <= node.memory_free_gb <= node.memory_gb + 1e-9
    # Quiesce: scale everything to zero and drain.
    for name in names:
        cluster.scale(name, 0)
    env.run(until=env.now + 30)
    assert cluster.allocated_cpus() == 0
    assert cluster.free_cpus() == cluster.total_cpus()
