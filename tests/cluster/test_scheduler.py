"""Tests for the bin-packing scheduler."""

import pytest

from repro.cluster.node import Node
from repro.cluster.scheduler import Scheduler
from repro.errors import SchedulingError


def test_places_on_emptiest_node():
    nodes = [Node("a", 8, 16), Node("b", 16, 16)]
    sched = Scheduler(nodes)
    chosen = sched.place(2, 1.0)
    assert chosen.name == "b"


def test_rejects_when_full():
    sched = Scheduler([Node("a", 2, 4)])
    sched.place(2, 1.0)
    with pytest.raises(SchedulingError):
        sched.place(1, 1.0)


def test_needs_nodes():
    with pytest.raises(SchedulingError):
        Scheduler([])


def test_duplicate_names_rejected():
    with pytest.raises(SchedulingError):
        Scheduler([Node("a", 2, 4), Node("a", 4, 4)])


def test_totals():
    sched = Scheduler([Node("a", 2, 4), Node("b", 4, 4)])
    assert sched.total_cpus() == 6
    assert sched.free_cpus() == 6
    sched.place(3, 1.0)
    assert sched.free_cpus() == 3


def test_memory_constraint_respected():
    sched = Scheduler([Node("a", 100, 1.0), Node("b", 2, 64.0)])
    chosen = sched.place(1, 32.0)
    assert chosen.name == "b"


def test_deterministic_tiebreak():
    nodes = [Node("a", 8, 16), Node("b", 8, 16)]
    assert Scheduler(nodes).place(1, 1.0).name == "b"
