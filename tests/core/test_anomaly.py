"""Tests for the request-ratio-deviation metric and anomaly detector."""

import pytest

from repro.core.anomaly import request_ratio_deviation


def test_balanced_loads_give_zero_deviation():
    loads = {"a": 10.0, "b": 20.0}
    thresholds = {"a": 5.0, "b": 10.0}  # both at 2x threshold
    assert request_ratio_deviation(loads, thresholds) == pytest.approx(0.0)


def test_skew_increases_deviation():
    thresholds = {"a": 5.0, "b": 10.0}
    balanced = request_ratio_deviation({"a": 10.0, "b": 20.0}, thresholds)
    skewed = request_ratio_deviation({"a": 30.0, "b": 20.0}, thresholds)
    assert skewed > balanced


def test_deviation_value():
    # ratios: a -> 4, b -> 2; mean 3; deviation = 4/3 - 1.
    deviation = request_ratio_deviation(
        {"a": 20.0, "b": 20.0}, {"a": 5.0, "b": 10.0}
    )
    assert deviation == pytest.approx(4.0 / 3.0 - 1.0)


def test_empty_or_zero_inputs():
    assert request_ratio_deviation({}, {}) == 0.0
    assert request_ratio_deviation({"a": 0.0}, {"a": 5.0}) == 0.0
    assert request_ratio_deviation({"a": 5.0}, {"a": 0.0}) == 0.0


def test_single_class_never_deviates():
    assert request_ratio_deviation({"a": 100.0}, {"a": 1.0}) == pytest.approx(0.0)
