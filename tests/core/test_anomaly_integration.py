"""Integration tests for the anomaly detector on a live app."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.core.anomaly import AnomalyDetector
from repro.core.optimizer import ScalingThreshold
from repro.errors import ConfigurationError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Environment, LogNormal, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def build_app(env):
    spec = AppSpec(
        "two-class",
        services=(
            ServiceSpec(
                "svc",
                cpus_per_replica=1,
                handlers={"a": LogNormal(0.004, 0.4), "b": LogNormal(0.004, 0.4)},
            ),
        ),
        request_classes=(
            RequestClass("a", Call("svc"), SlaSpec(99, 0.5)),
            RequestClass("b", Call("svc"), SlaSpec(99, 0.5)),
        ),
    )
    cluster = Cluster(env, nodes=[Node("n", 64, 128)])
    return Application(
        spec, env=env, cluster=cluster, streams=RandomStreams(13),
        initial_replicas=2,
    )


def thresholds(lpr_a=20.0, lpr_b=20.0):
    return {
        "svc": ScalingThreshold(
            service="svc",
            cpus_per_replica=1,
            lpr={"a": lpr_a, "b": lpr_b},
            load_samples={},
            utilization=0.5,
        )
    }


def test_no_anomaly_under_matching_mix():
    env = Environment()
    app = build_app(env)
    recalcs = []
    detector = AnomalyDetector(
        app, thresholds(), on_recalculate=lambda: recalcs.append(1),
        ratio_deviation_threshold=0.8,
    )
    env.run(until=10)
    LoadGenerator(app, ConstantLoad(40.0), RequestMix({"a": 0.5, "b": 0.5}),
                  RandomStreams(14), stop_at_s=200).start()
    env.run(until=200)
    detector.step()
    assert not recalcs
    assert not detector.events


def test_skewed_mix_triggers_recalculation():
    env = Environment()
    app = build_app(env)
    recalcs = []
    detector = AnomalyDetector(
        app, thresholds(), on_recalculate=lambda: recalcs.append(1),
        ratio_deviation_threshold=0.5,
        check_interval_s=60.0,
    )
    env.run(until=10)
    # 5:1 mix against 1:1 thresholds -> deviation (5/6)/(0.5) - 1 ~ 0.67.
    LoadGenerator(app, ConstantLoad(48.0), RequestMix({"a": 5.0, "b": 1.0}),
                  RandomStreams(15), stop_at_s=200).start()
    env.run(until=200)
    detector.step()
    assert recalcs
    assert any(e.kind == "load" for e in detector.events)


def test_latency_anomaly_triggers_reexploration():
    env = Environment()
    app = build_app(env)
    reexplored = []
    detector = AnomalyDetector(
        app,
        thresholds(),
        on_reexplore=reexplored.append,
        sla_violation_threshold=0.05,
        check_interval_s=60.0,
    )
    env.run(until=10)
    LoadGenerator(app, ConstantLoad(30.0), RequestMix({"a": 0.5, "b": 0.5}),
                  RandomStreams(16), stop_at_s=200).start()
    # Throttle the service so SLAs break.
    app.services["svc"].set_speed_factor(0.02)
    env.run(until=200)
    detector.step()
    assert reexplored == [["svc"]]
    assert any(e.kind == "latency" for e in detector.events)


def test_detector_loop_and_validation():
    env = Environment()
    app = build_app(env)
    with pytest.raises(ConfigurationError):
        AnomalyDetector(app, {}, check_interval_s=0)
    with pytest.raises(ConfigurationError):
        AnomalyDetector(app, {}, ratio_deviation_threshold=0)
    with pytest.raises(ConfigurationError):
        AnomalyDetector(app, {}, sla_violation_threshold=2.0)
    detector = AnomalyDetector(app, thresholds())
    detector.start()
    with pytest.raises(ConfigurationError):
        detector.start()
