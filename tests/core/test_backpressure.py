"""Tests for the backpressure profiler (miniature configurations)."""

import pytest

from repro.core.backpressure import BackpressureProfiler
from repro.errors import ExplorationError
from repro.services.spec import ServiceSpec
from repro.sim.random import Constant, LogNormal, RandomStreams
from repro.workload.mixes import RequestMix


@pytest.fixture(scope="module")
def profile():
    """One shared profiling run (they are expensive)."""
    profiler = BackpressureProfiler(
        RandomStreams(5), window_s=4.0, samples_per_limit=4
    )
    return profiler.profile("svc", LogNormal(0.008, 0.5), max_cpu_limit=8)


def test_profiler_finds_threshold_in_band(profile):
    assert 0.2 <= profile.threshold_utilization <= 0.95
    assert 2 <= profile.converged_cpu_limit <= 8


def test_profile_curve_shape(profile):
    """Utilisation decreases and proxy latency converges along the ramp."""
    utils = [p.utilization for p in profile.points]
    assert utils[0] == pytest.approx(1.0, abs=0.05)  # saturated at 1 CPU
    assert utils[-1] < utils[0]
    proxy = [p.proxy_p99_mean for p in profile.points]
    assert proxy[-1] < proxy[0] / 5  # >5x inflation before convergence


def test_threshold_is_pre_convergence_point(profile):
    assert profile.threshold_utilization == pytest.approx(
        profile.points[-2].utilization
    )


def test_profiler_validation():
    with pytest.raises(ExplorationError):
        BackpressureProfiler(RandomStreams(0), samples_per_limit=1)
    profiler = BackpressureProfiler(
        RandomStreams(0), window_s=4.0, samples_per_limit=4
    )
    with pytest.raises(ExplorationError):
        profiler.profile("svc", Constant(0.01), max_cpu_limit=1)


def test_profile_spec_uses_mix_weights():
    profiler = BackpressureProfiler(
        RandomStreams(9), window_s=4.0, samples_per_limit=4
    )
    spec = ServiceSpec(
        "mixed",
        cpus_per_replica=1,
        handlers={"fast": Constant(0.002), "slow": Constant(0.02)},
    )
    with pytest.raises(ExplorationError):
        # A mix giving the service zero load is rejected.
        profiler.profile_spec(spec, RequestMix({"other": 1.0}))


def test_profile_spec_without_handlers_rejected():
    profiler = BackpressureProfiler(RandomStreams(0))
    spec = ServiceSpec("empty", cpus_per_replica=1, handlers={})
    with pytest.raises(ExplorationError):
        profiler.profile_spec(spec)
