"""Tests for the Algorithm-1 exploration controller (miniature app)."""

import pytest

from repro.apps.topology import AppSpec, RequestClass, SlaSpec
from repro.core.exploration import ExplorationController, provisioning_for
from repro.errors import ExplorationError
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.random import LogNormal, RandomStreams
from repro.workload.mixes import RequestMix


def tiny_spec(work_mean=0.01, sla_s=0.2):
    return AppSpec(
        name="tiny",
        services=(
            ServiceSpec("front", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.002, 0.4)}),
            ServiceSpec("work", cpus_per_replica=1,
                        handlers={"req": LogNormal(work_mean, 0.5)}),
        ),
        request_classes=(
            RequestClass(
                "req",
                Call("front", CallMode.RPC, (Call("work"),)),
                SlaSpec(99.0, sla_s),
            ),
        ),
    )


@pytest.fixture(scope="module")
def controller():
    return ExplorationController(
        RandomStreams(7),
        window_s=10.0,
        samples_per_step=3,
        warmup_s=20.0,
        settle_s=5.0,
        min_window_samples=20,
    )


@pytest.fixture(scope="module")
def profile(controller):
    return controller.explore_service(tiny_spec(), "work", RequestMix({"req": 1.0}),
                                      rps=60.0, backpressure_threshold=0.65)


def test_exploration_records_options(profile):
    assert profile.options
    assert profile.samples_collected >= len(profile.options) * 3
    assert profile.profiling_time_s > 0


def test_lpr_ascends_as_replicas_drop(profile):
    lprs = [o.lpr["req"] for o in profile.options]
    assert all(b > a * 0.8 for a, b in zip(lprs, lprs[1:]))
    # Per-replica load roughly equals rate / replicas at the first step.
    first = profile.options[0]
    assert first.lpr["req"] == pytest.approx(60.0 / first.replicas, rel=0.25)


def test_latency_rows_grow_with_lpr(profile):
    """Higher load per replica -> higher tail latency (last grid column)."""
    tails = [o.latency_rows["req"][-1] for o in profile.options]
    assert tails[-1] >= tails[0]


def test_termination_reason_recorded(profile):
    assert profile.terminated_by in ("sla", "backpressure", "min_replicas")


def test_utilization_stays_below_threshold(profile):
    for option in profile.options:
        assert option.utilization < 0.65 + 0.1


def test_load_samples_match_lpr(profile):
    for option in profile.options:
        samples = option.load_samples["req"]
        assert len(samples) == 3
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(option.lpr["req"], rel=1e-6)


def test_unknown_mix_rejected(controller):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        controller.explore_service(
            tiny_spec(), "work", RequestMix({"ghost": 1.0}), rps=10.0
        )


def test_provisioning_scales_with_load():
    spec = tiny_spec(work_mean=0.02)
    mix = RequestMix({"req": 1.0})
    low = provisioning_for(spec, mix, rps=20.0)
    high = provisioning_for(spec, mix, rps=200.0)
    assert high["work"] > low["work"]
    assert all(r >= 1 for r in low.values())
    with pytest.raises(ExplorationError):
        provisioning_for(spec, mix, rps=0)


def test_controller_validation():
    with pytest.raises(ExplorationError):
        ExplorationController(RandomStreams(0), samples_per_step=0)
    with pytest.raises(ExplorationError):
        ExplorationController(RandomStreams(0), sla_violation_threshold=0)
    with pytest.raises(ExplorationError):
        ExplorationController(RandomStreams(0), probe_growth=1.0)


def test_explore_app_covers_services(controller):
    result = controller.explore_app(
        tiny_spec(), RequestMix({"req": 1.0}), rps=40.0,
        backpressure_thresholds={"front": 0.7, "work": 0.7},
    )
    assert set(result.profiles) == {"front", "work"}
    assert result.total_samples == sum(
        p.samples_collected for p in result.profiles.values()
    )
    assert result.exploration_time_s == max(
        p.profiling_time_s for p in result.profiles.values()
    )
