"""Tests for exploration save/load round-tripping."""

from repro.core.exploration import (
    ExplorationResult,
    LprOption,
    ServiceProfile,
    load_exploration,
    save_exploration,
)

GRID_LEN = 8


def synthetic():
    options = [
        LprOption(
            replicas=3 - k,
            lpr={"a": 10.0 * (k + 1), "b": 5.0 * (k + 1)},
            load_samples={"a": [9.0, 10.0, 11.0], "b": [5.0, 5.5]},
            latency_rows={
                "a": [0.01 * (k + 1) * (1 + 0.1 * i) for i in range(GRID_LEN)],
                "b": [0.02 * (k + 1)] * GRID_LEN,
            },
            utilization=0.3 + 0.1 * k,
        )
        for k in range(3)
    ]
    return ExplorationResult(
        "app",
        {
            "svc": ServiceProfile("svc", 2, options, 30, 1800.0, "sla"),
        },
    )


def test_round_trip(tmp_path):
    original = synthetic()
    path = tmp_path / "exploration.json"
    save_exploration(original, path)
    loaded = load_exploration(path)
    assert loaded.app_name == original.app_name
    assert loaded.total_samples == original.total_samples
    assert loaded.exploration_time_s == original.exploration_time_s
    svc_orig = original.profiles["svc"]
    svc_new = loaded.profiles["svc"]
    assert svc_new.terminated_by == svc_orig.terminated_by
    assert svc_new.cpus_per_replica == svc_orig.cpus_per_replica
    for a, b in zip(svc_orig.options, svc_new.options):
        assert a.replicas == b.replicas
        assert a.lpr == b.lpr
        assert a.load_samples == b.load_samples
        assert a.latency_rows == b.latency_rows
        assert a.utilization == b.utilization


def test_trace_digest_round_trips(tmp_path):
    path = tmp_path / "exploration.json"
    traced = synthetic()
    traced.trace_digest = "ab" * 16
    save_exploration(traced, path)
    assert load_exploration(path).trace_digest == "ab" * 16
    # Untraced results stay untraced through the round trip.
    save_exploration(synthetic(), path)
    assert load_exploration(path).trace_digest is None


def test_legacy_payload_without_digest_loads(tmp_path):
    import json

    path = tmp_path / "exploration.json"
    save_exploration(synthetic(), path)
    payload = json.loads(path.read_text())
    del payload["trace_digest"]  # files written before tracing existed
    path.write_text(json.dumps(payload))
    assert load_exploration(path).trace_digest is None


def test_loaded_result_drives_optimizer(tmp_path):
    """A loaded exploration is directly usable by the optimisation engine."""
    from repro.apps.topology import AppSpec, RequestClass, SlaSpec
    from repro.core.optimizer import OptimizationEngine
    from repro.net.messages import Call
    from repro.services.spec import ServiceSpec
    from repro.sim.random import Constant

    path = tmp_path / "exploration.json"
    save_exploration(synthetic(), path)
    loaded = load_exploration(path)
    spec = AppSpec(
        "app",
        services=(
            ServiceSpec(
                "svc",
                cpus_per_replica=2,
                handlers={"a": Constant(0.01), "b": Constant(0.02)},
            ),
        ),
        request_classes=(
            RequestClass("a", Call("svc"), SlaSpec(99.0, 1.0)),
            RequestClass("b", Call("svc"), SlaSpec(99.0, 1.0)),
        ),
    )
    outcome = OptimizationEngine().optimize(spec, loaded, {"a": 20.0, "b": 10.0})
    assert outcome.thresholds["svc"].lpr["a"] > 0
