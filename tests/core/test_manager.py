"""Integration tests for the UrsaManager facade (miniature app)."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.core.exploration import ExplorationResult, LprOption, ServiceProfile
from repro.core.manager import UrsaManager
from repro.errors import ConfigurationError
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Environment, LogNormal, RandomStreams
from repro.stats.distributions import DEFAULT_PERCENTILE_GRID
from repro.workload import ConstantLoad, LoadGenerator, RequestMix

GRID = DEFAULT_PERCENTILE_GRID


def tiny_spec():
    return AppSpec(
        "tiny",
        services=(
            ServiceSpec("front", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.002, 0.4)}),
            ServiceSpec("work", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.010, 0.5)}),
        ),
        request_classes=(
            RequestClass("req", Call("front", CallMode.RPC, (Call("work"),)),
                         SlaSpec(99.0, 0.3)),
        ),
    )


def synthetic_exploration():
    """Hand-built profiles: LPR options at 15/30/60 rps per replica."""

    def options(base_latency):
        out = []
        for k, lpr in enumerate([15.0, 30.0, 60.0]):
            rows = [base_latency * (1 + k) * (1 + 0.1 * i) for i in range(len(GRID))]
            out.append(
                LprOption(
                    replicas=3 - k,
                    lpr={"req": lpr},
                    load_samples={"req": [lpr * f for f in (0.95, 1.0, 1.05)]},
                    latency_rows={"req": rows},
                    utilization=0.3 + 0.15 * k,
                )
            )
        return out

    profiles = {
        "front": ServiceProfile("front", 1, options(0.004), 30, 1800, "sla"),
        "work": ServiceProfile("work", 1, options(0.015), 30, 1800, "sla"),
    }
    return ExplorationResult("tiny", profiles)


def make_app(env):
    return Application(
        tiny_spec(),
        env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(9),
        initial_replicas=1,
    )


def test_initialize_scales_to_mip_solution():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    manager = UrsaManager(app, synthetic_exploration())
    outcome = manager.initialize({"req": 50.0})
    # The chosen thresholds size replicas as ceil(load / lpr).
    for name, threshold in outcome.thresholds.items():
        expected = threshold.replicas_for({"req": 50.0})
        assert app.services[name].deployment.desired_replicas == expected
    assert outcome.predicted_bounds["req"] <= 0.3


def test_start_requires_initialize():
    env = Environment()
    app = make_app(env)
    manager = UrsaManager(app, synthetic_exploration())
    with pytest.raises(ConfigurationError):
        manager.start()


def test_double_start_rejected():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    manager = UrsaManager(app, synthetic_exploration())
    manager.initialize({"req": 30.0})
    manager.start()
    with pytest.raises(ConfigurationError):
        manager.start()


def test_managed_deployment_meets_sla():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    manager = UrsaManager(app, synthetic_exploration())
    manager.initialize({"req": 60.0})
    manager.start()
    LoadGenerator(app, ConstantLoad(60.0), RequestMix({"req": 1.0}),
                  RandomStreams(10), stop_at_s=500).start()
    env.run(until=540)
    assert app.windowed_violation_rate(120, 540) < 0.25


def test_observed_class_loads():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    manager = UrsaManager(app, synthetic_exploration())
    manager.initialize({"req": 40.0})
    LoadGenerator(app, ConstantLoad(40.0), RequestMix({"req": 1.0}),
                  RandomStreams(11), stop_at_s=300).start()
    env.run(until=300)
    loads = manager.observed_class_loads()
    assert loads["req"] == pytest.approx(40.0, rel=0.2)


def test_deploy_timing_probe():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    manager = UrsaManager(app, synthetic_exploration())
    manager.initialize({"req": 30.0})
    seconds = manager.time_deploy_decision(repeats=5)
    assert 0 < seconds < 0.1
    update_seconds = manager.time_update_decision({"req": 30.0})
    assert 0 < update_seconds < 5.0


def test_reexploration_merge_cycle():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    manager = UrsaManager(app, synthetic_exploration())
    manager.initialize({"req": 30.0})
    LoadGenerator(app, ConstantLoad(30.0), RequestMix({"req": 1.0}),
                  RandomStreams(12), stop_at_s=200).start()
    env.run(until=200)
    # Simulate the detector flagging a service.
    manager._mark_for_reexploration(["work"])
    manager._mark_for_reexploration(["work"])  # idempotent
    assert manager.pending_reexploration == ["work"]
    # Fresh partial exploration for that service.
    fresh = synthetic_exploration()
    partial = ExplorationResult("tiny", {"work": fresh.profiles["work"]})
    manager.apply_reexploration(partial)
    assert manager.pending_reexploration == []
    assert manager.recalculations >= 1
