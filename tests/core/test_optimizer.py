"""Tests for the optimisation engine with synthetic exploration data."""

import pytest

from repro.apps.topology import AppSpec, RequestClass, SlaSpec
from repro.core.exploration import ExplorationResult, LprOption, ServiceProfile
from repro.core.optimizer import OptimizationEngine, ScalingThreshold
from repro.errors import InfeasibleModelError
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.random import Constant

GRID = [50.0, 90.0, 95.0, 99.0, 99.5, 99.9]


def make_spec(sla_s=1.0):
    return AppSpec(
        name="toy",
        services=(
            ServiceSpec("front", cpus_per_replica=1, handlers={"req": Constant(0.01)}),
            ServiceSpec("back", cpus_per_replica=2, handlers={"req": Constant(0.02)}),
        ),
        request_classes=(
            RequestClass(
                "req",
                Call("front", CallMode.RPC, (Call("back"),)),
                SlaSpec(99.0, sla_s),
            ),
        ),
    )


def make_option(replicas, lpr, base_latency):
    """An LPR option whose latency grows with percentile index."""
    rows = [base_latency * (1 + 0.05 * i) for i in range(len(GRID))]
    return LprOption(
        replicas=replicas,
        lpr={"req": lpr},
        load_samples={"req": [lpr * f for f in (0.95, 1.0, 1.05)]},
        latency_rows={"req": rows},
        utilization=0.5,
    )


def make_exploration(front_latencies=(0.01, 0.02, 0.04), back_latencies=(0.02, 0.04, 0.08)):
    """Three options per service: LPR 10/20/40 rps with rising latency."""
    lprs = [10.0, 20.0, 40.0]
    profiles = {
        "front": ServiceProfile(
            service="front",
            cpus_per_replica=1,
            options=[
                make_option(3 - i, lprs[i], front_latencies[i]) for i in range(3)
            ],
            samples_collected=30,
            profiling_time_s=1800.0,
            terminated_by="sla",
        ),
        "back": ServiceProfile(
            service="back",
            cpus_per_replica=2,
            options=[
                make_option(3 - i, lprs[i], back_latencies[i]) for i in range(3)
            ],
            samples_collected=30,
            profiling_time_s=1800.0,
            terminated_by="sla",
        ),
    }
    return ExplorationResult(app_name="toy", profiles=profiles)


def test_loose_sla_picks_highest_lpr():
    engine = OptimizationEngine(GRID)
    outcome = engine.optimize(make_spec(sla_s=10.0), make_exploration(), {"req": 40.0})
    # Highest LPR (40 rps) -> 1 replica each.
    assert outcome.thresholds["front"].lpr["req"] == 40.0
    assert outcome.thresholds["back"].lpr["req"] == 40.0
    assert outcome.solution.objective == 1 * 1 + 1 * 2


def test_tight_sla_forces_low_lpr():
    engine = OptimizationEngine(GRID)
    # Only the lowest-latency options (0.01 + 0.02 = 0.03) fit under 0.04.
    outcome = engine.optimize(
        make_spec(sla_s=0.04), make_exploration(), {"req": 40.0}
    )
    assert outcome.thresholds["front"].lpr["req"] == 10.0
    assert outcome.thresholds["back"].lpr["req"] == 10.0
    # 40 rps load at 10 rps/replica -> 4 replicas each.
    assert outcome.solution.objective == 4 * 1 + 4 * 2


def test_infeasible_sla_raises():
    engine = OptimizationEngine(GRID)
    with pytest.raises(InfeasibleModelError):
        engine.optimize(make_spec(sla_s=0.02), make_exploration(), {"req": 40.0})


def test_predicted_bounds_respect_sla():
    engine = OptimizationEngine(GRID)
    spec = make_spec(sla_s=0.1)
    outcome = engine.optimize(spec, make_exploration(), {"req": 40.0})
    assert outcome.predicted_bounds["req"] <= 0.1
    assert outcome.bound_percentiles["req"] == 99.0


def test_resources_scale_with_load():
    engine = OptimizationEngine(GRID)
    spec = make_spec(sla_s=10.0)
    low = engine.optimize(spec, make_exploration(), {"req": 40.0})
    high = engine.optimize(spec, make_exploration(), {"req": 120.0})
    assert high.solution.objective > low.solution.objective


def test_scaling_threshold_replicas_for():
    threshold = ScalingThreshold(
        service="s",
        cpus_per_replica=1,
        lpr={"a": 10.0, "b": 5.0},
        load_samples={},
        utilization=0.5,
    )
    assert threshold.replicas_for({"a": 25.0, "b": 5.0}) == 3  # a needs 3
    assert threshold.replicas_for({"a": 5.0, "b": 20.0}) == 4  # b needs 4
    assert threshold.replicas_for({"a": 0.0, "b": 0.0}) == 1
    # Unknown/zero-threshold classes cannot size.
    assert threshold.replicas_for({"c": 100.0}) == 1


def test_access_counts_multiply_latency_and_load():
    """A service accessed 3x per request must count cumulative latency."""
    spec = AppSpec(
        name="rep",
        services=(
            ServiceSpec("svc", cpus_per_replica=1, handlers={"req": Constant(0.01)}),
        ),
        request_classes=(
            RequestClass("req", Call("svc", repeat=3), SlaSpec(99.0, 1.0)),
        ),
    )
    profiles = {
        "svc": ServiceProfile(
            service="svc",
            cpus_per_replica=1,
            options=[make_option(1, 30.0, 0.01)],
            samples_collected=10,
            profiling_time_s=600.0,
            terminated_by="sla",
        )
    }
    engine = OptimizationEngine(GRID)
    model = engine.build_model(
        spec, ExplorationResult("rep", profiles), {"req": 10.0}
    )
    # Latency rows multiplied by the 3 accesses.
    svc = model.services[0]
    assert svc.latency["req"][0, 0] == pytest.approx(0.03)
    # Service-level load = 10 rps x 3 accesses = 30 -> exactly 1 replica.
    assert svc.resources[0] == 1
