"""Tests for the overestimation tracker."""

import pytest

from repro.core.overestimation import OverestimationTracker
from repro.errors import ConfigurationError


def test_default_ratio_is_one():
    tracker = OverestimationTracker()
    assert tracker.ratio("req") == 1.0
    assert tracker.estimate("req", 2.0) == 2.0


def test_observe_updates_ratio():
    tracker = OverestimationTracker(alpha=1.0)  # no smoothing
    tracker.observe("req", measured=0.8, bound=1.0)
    assert tracker.ratio("req") == pytest.approx(0.8)
    assert tracker.estimate("req", 2.0) == pytest.approx(1.6)


def test_ewma_smoothing():
    tracker = OverestimationTracker(alpha=0.5)
    tracker.observe("req", 1.0, 1.0)  # ratio 1.0
    tracker.observe("req", 0.5, 1.0)  # ratio .5 -> ewma .75
    assert tracker.ratio("req") == pytest.approx(0.75)
    assert tracker.observations("req") == 2


def test_classes_tracked_separately():
    tracker = OverestimationTracker()
    tracker.observe("a", 0.5, 1.0)
    assert tracker.ratio("b") == 1.0


def test_validation():
    with pytest.raises(ConfigurationError):
        OverestimationTracker(alpha=0)
    tracker = OverestimationTracker()
    with pytest.raises(ConfigurationError):
        tracker.observe("req", -1.0, 1.0)
    with pytest.raises(ConfigurationError):
        tracker.observe("req", 1.0, 0.0)
    with pytest.raises(ConfigurationError):
        tracker.estimate("req", 0.0)
