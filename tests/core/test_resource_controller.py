"""Tests for the threshold-based resource controller."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.core.optimizer import ScalingThreshold
from repro.core.resource_controller import ResourceController
from repro.errors import ConfigurationError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def build_app(env, replicas=2):
    spec = AppSpec(
        name="one",
        services=(
            ServiceSpec("svc", cpus_per_replica=1, handlers={"req": Constant(0.005)}),
        ),
        request_classes=(
            RequestClass("req", Call("svc"), SlaSpec(99.0, 1.0)),
        ),
    )
    cluster = Cluster(env, nodes=[Node("n", 64, 128)])
    return Application(
        spec, env=env, cluster=cluster, streams=RandomStreams(1),
        initial_replicas=replicas,
    )


def threshold(lpr, samples=None):
    return ScalingThreshold(
        service="svc",
        cpus_per_replica=1,
        lpr={"req": lpr},
        load_samples={"req": samples if samples is not None else
                      [lpr * f for f in (0.96, 0.99, 1.01, 1.04)]},
        utilization=0.5,
    )


def drive(env, app, rps, until):
    LoadGenerator(
        app, ConstantLoad(rps), RequestMix({"req": 1.0}), RandomStreams(2),
        stop_at_s=until,
    ).start()
    env.run(until=until)


def test_scales_out_when_load_exceeds_threshold():
    env = Environment()
    app = build_app(env, replicas=1)
    controller = ResourceController(app, {"svc": threshold(lpr=20.0)})
    env.run(until=10)
    drive(env, app, rps=60.0, until=130)  # 3x the per-replica threshold
    decision = controller.decide("svc")
    assert decision is not None
    assert decision.to_replicas == 3
    assert "scale-out" in decision.reason


def test_holds_when_load_matches_threshold_noise():
    env = Environment()
    app = build_app(env, replicas=2)
    controller = ResourceController(app, {"svc": threshold(lpr=20.0)})
    env.run(until=10)
    drive(env, app, rps=40.0, until=130)  # exactly at threshold
    decision = controller.decide("svc")
    # Either no decision or a +-0 change; the t-test absorbs noise.
    if decision is not None:
        assert abs(decision.to_replicas - 2) <= 1


def test_scales_in_when_overprovisioned():
    env = Environment()
    app = build_app(env, replicas=5)
    controller = ResourceController(app, {"svc": threshold(lpr=20.0)})
    env.run(until=10)
    drive(env, app, rps=20.0, until=130)  # needs just one replica
    decision = controller.decide("svc")
    assert decision is not None
    assert decision.to_replicas < 5
    assert decision.reason == "scale-in"


def test_step_applies_decisions():
    env = Environment()
    app = build_app(env, replicas=1)
    controller = ResourceController(app, {"svc": threshold(lpr=10.0)})
    env.run(until=10)
    drive(env, app, rps=50.0, until=130)
    applied = controller.step()
    assert applied
    env.run(until=160)
    assert app.services["svc"].deployment.desired_replicas == applied[0].to_replicas


def test_loop_runs_periodically():
    env = Environment()
    app = build_app(env, replicas=1)
    controller = ResourceController(
        app, {"svc": threshold(lpr=10.0)}, control_interval_s=15.0
    )
    controller.start()
    drive(env, app, rps=50.0, until=200)
    assert controller.decisions  # scaled at least once
    assert app.services["svc"].deployment.desired_replicas >= 4


def test_unknown_service_ignored():
    env = Environment()
    app = build_app(env)
    controller = ResourceController(app, {})
    assert controller.decide("svc") is None


def test_validation():
    env = Environment()
    app = build_app(env)
    with pytest.raises(ConfigurationError):
        ResourceController(app, {}, control_interval_s=0)
    with pytest.raises(ConfigurationError):
        ResourceController(app, {}, lookback_windows=0)
    controller = ResourceController(app, {})
    controller.start()
    with pytest.raises(ConfigurationError):
        controller.start()


def test_min_replicas_respected():
    env = Environment()
    app = build_app(env, replicas=4)
    controller = ResourceController(
        app, {"svc": threshold(lpr=1000.0)}, min_replicas=2
    )
    env.run(until=10)
    drive(env, app, rps=5.0, until=130)
    decision = controller.decide("svc")
    assert decision is not None
    assert decision.to_replicas >= 2
