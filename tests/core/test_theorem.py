"""Tests for Theorem 1 utilities, incl. a property-based bound check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theorem import (
    empirical_bound_holds,
    latency_upper_bound,
    residuals_fit,
    split_residual_evenly,
)
from repro.errors import ConfigurationError
from repro.stats.distributions import EmpiricalDistribution


def test_residuals_fit_examples_from_paper():
    # p99 e2e over two services: (99.1, 99.9), (99.5, 99.5), (99.7, 99.3).
    for pair in [(99.1, 99.9), (99.5, 99.5), (99.7, 99.3)]:
        assert residuals_fit(99.0, pair)
    assert not residuals_fit(99.0, (99.0, 99.5))


def test_residuals_fit_validation():
    with pytest.raises(ConfigurationError):
        residuals_fit(0, [99])
    with pytest.raises(ConfigurationError):
        residuals_fit(99, [100])


def test_split_residual_evenly():
    assert split_residual_evenly(99.0, 2) == [99.5, 99.5]
    assert split_residual_evenly(99.0, 1) == [99.0]
    assert split_residual_evenly(50.0, 5) == [90.0] * 5
    with pytest.raises(ConfigurationError):
        split_residual_evenly(99.0, 0)


def test_latency_upper_bound():
    a = EmpiricalDistribution.from_samples([1.0] * 100)
    b = EmpiricalDistribution.from_samples([2.0] * 100)
    assert latency_upper_bound([a, b], [99.5, 99.5]) == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        latency_upper_bound([a], [99.0, 99.0])


def test_empirical_bound_requires_valid_residuals():
    a = EmpiricalDistribution.from_samples([1.0] * 10)
    e2e = EmpiricalDistribution.from_samples([1.0] * 10)
    with pytest.raises(ConfigurationError):
        empirical_bound_holds(e2e, [a, a], 99.0, [99.0, 99.0])


@given(
    seed=st.integers(0, 5000),
    n=st.integers(2, 5),
    correlated=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_theorem1_bound_holds(seed, n, correlated):
    """Sum of per-service percentiles bounds the e2e percentile.

    The theorem is distribution-free; we check on independent and on
    positively-correlated lognormal chains.  A small slack absorbs finite-
    sample noise at the measured percentiles.
    """
    rng = np.random.default_rng(seed)
    size = 4000
    if correlated:
        shared = rng.lognormal(0, 0.5, size)
        parts = [shared * rng.lognormal(0, 0.3, size) for _ in range(n)]
    else:
        parts = [rng.lognormal(0, 0.5, size) for _ in range(n)]
    e2e_samples = np.sum(parts, axis=0)
    per_service = [EmpiricalDistribution.from_samples(p) for p in parts]
    e2e = EmpiricalDistribution.from_samples(e2e_samples)
    percentiles = split_residual_evenly(99.0, n)
    bound = latency_upper_bound(per_service, percentiles)
    measured = e2e.percentile(99.0)
    assert measured <= bound * 1.02  # 2% finite-sample slack
