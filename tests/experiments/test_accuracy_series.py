"""Unit tests for the Fig. 9/10 accuracy-series bookkeeping."""

import math

from repro.experiments.fig09_10_model_accuracy import AccuracySeries
from repro.experiments.table06_control_plane import ControlPlaneLatency


def test_mean_ratio():
    series = AccuracySeries("req", 99.0)
    series.points = [(0.0, 1.0, 1.1), (60.0, 2.0, 1.8)]
    # ratios: 1.1, 0.9 -> mean 1.0
    assert series.mean_ratio == 1.0


def test_mean_ratio_ignores_zero_measurements():
    series = AccuracySeries("req", 99.0)
    series.points = [(0.0, 0.0, 1.0), (60.0, 1.0, 1.5)]
    assert series.mean_ratio == 1.5


def test_mean_ratio_empty_is_nan():
    series = AccuracySeries("req", 50.0)
    assert math.isnan(series.mean_ratio)


def test_series_render_contains_summary():
    series = AccuracySeries("req", 99.0)
    series.points = [(0.0, 1.0, 1.0)]
    text = series.render()
    assert "measured p99" in text
    assert "estimated p99" in text
    assert "mean est/meas ratio: 1.000" in text


def test_control_plane_render():
    table = ControlPlaneLatency(
        deploy_ms={"ursa": 0.5, "sinan": 300.0, "firm": 20.0, "autoscaling": 0.1},
        update_ms={"ursa": 250.0, "sinan": None, "firm": 1200.0, "autoscaling": 0.1},
    )
    text = table.render()
    assert "N/A" in text          # Sinan retraining is offline
    assert "0.500" in text        # Ursa deploy
    assert "Table VI" in text
