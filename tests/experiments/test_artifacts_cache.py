"""Tests for the artifact cache plumbing (no heavy builds)."""

import pytest

from repro.experiments import artifacts


def test_app_spec_builders():
    for name in (
        "social-network",
        "vanilla-social-network",
        "media-service",
        "video-pipeline",
    ):
        spec = artifacts.app_spec(name)
        assert spec.name == name
        assert artifacts.app_rps(name) > 0
    with pytest.raises(ValueError):
        artifacts.app_spec("nope")
    with pytest.raises(KeyError):
        artifacts.app_rps("nope")


def test_cached_round_trip(monkeypatch, tmp_path):
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    calls = []

    def build():
        calls.append(1)
        return {"value": 42}

    first = artifacts._cached("unit-test-key", build)
    second = artifacts._cached("unit-test-key", build)
    assert first == second == {"value": 42}
    assert len(calls) == 1  # second call hit the pickle
    files = list(tmp_path.glob("unit-test-key-*.pkl"))
    assert len(files) == 1


def test_cache_key_includes_scale_profile(monkeypatch, tmp_path):
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    monkeypatch.setenv("REPRO_SCALE", "quick")
    artifacts._cached("k", lambda: 1)
    monkeypatch.setenv("REPRO_SCALE", "full")
    artifacts._cached("k", lambda: 2)
    assert len(list(tmp_path.glob("k-*.pkl"))) == 2
