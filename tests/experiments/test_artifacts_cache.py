"""Tests for the artifact cache plumbing (no heavy builds)."""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.experiments import artifacts


def test_app_spec_builders():
    for name in (
        "social-network",
        "vanilla-social-network",
        "media-service",
        "video-pipeline",
    ):
        spec = artifacts.app_spec(name)
        assert spec.name == name
        assert artifacts.app_rps(name) > 0
    with pytest.raises(ValueError):
        artifacts.app_spec("nope")
    with pytest.raises(KeyError):
        artifacts.app_rps("nope")


def test_cached_round_trip(monkeypatch, tmp_path):
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    calls = []

    def build():
        calls.append(1)
        return {"value": 42}

    first = artifacts._cached("unit-test-key", build)
    second = artifacts._cached("unit-test-key", build)
    assert first == second == {"value": 42}
    assert len(calls) == 1  # second call hit the pickle
    files = list(tmp_path.glob("unit-test-key-*.pkl"))
    assert len(files) == 1


def test_cache_key_includes_scale_profile(monkeypatch, tmp_path):
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    monkeypatch.setenv("REPRO_SCALE", "quick")
    artifacts._cached("k", lambda: 1)
    monkeypatch.setenv("REPRO_SCALE", "full")
    artifacts._cached("k", lambda: 2)
    assert len(list(tmp_path.glob("k-*.pkl"))) == 2


def test_corrupt_entry_is_a_miss(monkeypatch, tmp_path):
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)

    def build():
        return [1, 2, 3]

    artifacts._cached("corrupt", build)
    (path,) = tmp_path.glob("corrupt-*.pkl")
    path.write_bytes(b"\x80\x04 truncated garbage")
    assert artifacts._cached("corrupt", build) == [1, 2, 3]
    with path.open("rb") as fh:
        assert pickle.load(fh) == [1, 2, 3], "rebuilt entry republished"


def test_concurrent_misses_build_once(monkeypatch, tmp_path):
    """Four processes racing on one cold key perform exactly one build.

    Without the per-key lock each racer pays the full build (cold-cache
    ``table05``-style fan-outs cost N explorations instead of one).
    """
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    builds_dir = tmp_path / "build-markers"
    builds_dir.mkdir()
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()

    def worker():
        def build():
            # ursalint: disable=SIM001 -- real wall-clock uniquifier for a real race
            marker = builds_dir / f"pid-{os.getpid()}-{time.monotonic_ns()}"
            marker.touch()
            time.sleep(0.2)  # widen the race window
            return {"value": 42}

        queue.put(artifacts._cached("race-key", build)["value"])

    procs = [ctx.Process(target=worker) for _ in range(4)]
    for p in procs:
        p.start()
    values = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    assert values == [42, 42, 42, 42]
    assert len(list(builds_dir.iterdir())) == 1, "lock must serialise builds"


def test_lock_file_left_in_place(monkeypatch, tmp_path):
    """The lock file persists -- unlinking it would reopen the race."""
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    artifacts._cached("keep-lock", lambda: 1)
    assert list(tmp_path.glob("keep-lock-*.pkl.lock"))


def test_distinct_keys_do_not_share_a_lock(monkeypatch, tmp_path):
    """Key A's lock never blocks key B's build (no global serialisation)."""
    monkeypatch.setattr(artifacts, "cache_dir", lambda: tmp_path)
    path_a = tmp_path / f"a-{artifacts.scale_profile().name}.pkl"
    with artifacts._key_lock(path_a):
        assert artifacts._cached("b", lambda: "built-b") == "built-b"
