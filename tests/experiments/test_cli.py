"""Tests for the CLI surface (argument handling; no heavy experiments)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, _run, main


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_known_names_listed():
    assert "fig02" in EXPERIMENTS
    assert "table06" in EXPERIMENTS


def test_run_rejects_bad_name():
    with pytest.raises(ValueError):
        _run("bogus", None, None)


def test_table05_branch_returns_five_values(monkeypatch):
    # main() unpacks exactly (text, meta, trace_sources, report, html)
    # from _run; stub out the heavy experiment and pin the table05 arity.
    import repro.experiments.table05_exploration as t05

    class _Table:
        def render(self):
            return "rendered"

    monkeypatch.setattr(
        t05, "run_table05", lambda jobs=None, on_complete=None: _Table()
    )
    monkeypatch.setattr(t05, "experiment_meta", lambda table: {"seed": 1})
    text, meta, trace_sources, report, html = _run("table05", None, None)
    assert text == "rendered"
    assert meta == {"seed": 1}
    assert trace_sources == {}
    assert report is None
    assert html is None


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "fig02" in out
    assert "--jobs" in out


def test_jobs_flag_validated():
    with pytest.raises(SystemExit):
        main(["fig13", "--jobs", "0"])
    with pytest.raises(SystemExit):
        main(["fig13", "--jobs", "not-a-number"])


def test_save_rejected_for_summary():
    # ``summary`` aggregates other results and has no provenance of its
    # own to persist.
    with pytest.raises(SystemExit):
        main(["summary", "--save"])


def test_fleet_flags_validated():
    # --cells/--smoke only make sense for the fleet experiment.
    with pytest.raises(SystemExit):
        main(["fig13", "--cells", "4"])
    with pytest.raises(SystemExit):
        main(["fig13", "--smoke"])
    with pytest.raises(SystemExit):
        main(["fleet", "--cells", "0"])


def test_dump_traces_flag_validated():
    # Only tracing-capable experiments accept --dump-traces, and N >= 1.
    with pytest.raises(SystemExit):
        main(["fig13", "--dump-traces", "3"])
    with pytest.raises(SystemExit):
        main(["fig09", "--dump-traces", "0"])
    with pytest.raises(SystemExit):
        main(["fig09", "--dump-traces", "not-a-number"])
