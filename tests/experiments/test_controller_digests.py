"""Event-trace digests for controller-owned runs (fig04 / table05).

The backpressure profiler and the exploration controller build their
environments internally, so their experiments used to be content-hash
only.  Both now accept a ``trace=`` hook that is installed on every
internal environment; these tests pin the threading, the determinism of
the resulting digests, and the sidecar wiring.
"""

from repro.core.backpressure import BackpressureProfile, BackpressureProfiler, ProfilePoint
from repro.core.exploration import ExplorationController
from repro.experiments.fig04_thresholds import ThresholdCurves
from repro.experiments.fig04_thresholds import experiment_meta as fig04_meta
from repro.experiments.table05_exploration import ExplorationOverheadRow, Table05
from repro.experiments.table05_exploration import experiment_meta as table05_meta
from repro.sim.random import LogNormal, RandomStreams
from repro.sim.trace import RunDigest
from repro.workload.mixes import RequestMix

from tests.core.test_exploration import tiny_spec


class CountingHook:
    def __init__(self):
        self.events = 0

    def __call__(self, when, priority, seq, event):
        self.events += 1


def quick_profiler():
    return BackpressureProfiler(
        RandomStreams(5), window_s=2.0, samples_per_limit=2
    )


def test_profiler_installs_trace_on_measurement_envs():
    hook = CountingHook()
    profiler = quick_profiler()
    point = profiler._measure_at_limit(
        "svc", LogNormal(0.004, 0.4), cpu_limit=2, rps=50.0, trace=hook
    )
    assert point.cpu_limit == 2
    assert hook.events > 0


def test_profiler_measurements_are_digest_deterministic():
    digests = []
    for _ in range(2):
        digest = RunDigest()
        quick_profiler()._measure_at_limit(
            "svc", LogNormal(0.004, 0.4), cpu_limit=2, rps=50.0, trace=digest
        )
        digests.append(digest.hexdigest())
    assert digests[0] == digests[1]


def _explore(trace):
    controller = ExplorationController(
        RandomStreams(7),
        window_s=10.0,
        samples_per_step=3,
        warmup_s=20.0,
        settle_s=5.0,
        min_window_samples=20,
    )
    return controller.explore_app(
        tiny_spec(), RequestMix({"req": 1.0}), 60.0, {"work": 0.65}, trace=trace
    )


def test_exploration_digest_is_deterministic_and_optional():
    traced_a = _explore(RunDigest())
    traced_b = _explore(RunDigest())
    plain = _explore(None)
    assert traced_a.trace_digest is not None
    assert traced_a.trace_digest == traced_b.trace_digest
    assert plain.trace_digest is None
    # Tracing observes scheduling, never steers it: same profiles.
    assert traced_a.total_samples == plain.total_samples
    assert {n: p.samples_collected for n, p in traced_a.profiles.items()} == {
        n: p.samples_collected for n, p in plain.profiles.items()
    }


def _fig04_curves(digests):
    profile = BackpressureProfile(
        service="post",
        threshold_utilization=0.5,
        converged_cpu_limit=3,
        points=[ProfilePoint(3, (0.01, 0.01), tested_p99=0.01, utilization=0.5)],
    )
    return ThresholdCurves(profiles={"post": profile}, digests=digests)


def test_fig04_meta_pins_digests():
    meta = fig04_meta(_fig04_curves({"post": "cd" * 16}))
    assert dict(meta.digests) == {"post": "cd" * 16}
    assert dict(fig04_meta(_fig04_curves({})).digests) == {}


def test_table05_meta_pins_digests_and_skips_legacy_rows():
    def row(app, digest):
        return ExplorationOverheadRow(
            app=app,
            ursa_samples=100,
            ursa_time_h=1.0,
            ml_samples=10_000,
            ml_time_h=166.7,
            trace_digest=digest,
        )

    table = Table05(rows=[row("social-network", "ef" * 16), row("media-service", "")])
    meta = table05_meta(table)
    # Rows from pre-digest cached artefacts carry no fingerprint and are
    # omitted rather than pinned as empty strings.
    assert dict(meta.digests) == {"social-network": "ef" * 16}
