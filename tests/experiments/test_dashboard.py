"""Run dashboard: shard merging, alert timelines, deterministic rendering.

Builds dashboards from synthetic :class:`DeploymentResult` shards so the
histogram merge, alert ordering, and both renderers are pinned without
paying for deployments; the end-to-end path (real runs, two seeds) is
exercised by ``repro.experiments.report --smoke`` in CI.
"""

from repro.experiments.report import (
    build_dashboard,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.experiments.runner import (
    DeploymentMetrics,
    DeploymentResult,
    SLOArtifacts,
)
from repro.telemetry.audit import AuditVerdict
from repro.stats.histogram import FixedHistogram
from repro.telemetry.slo import ALERT_BURN_RATE, Alert, alerts_to_jsonl


def make_result(
    label_seed: int,
    samples,
    cpu_by_service=None,
    alerts=(),
    budget_report=None,
) -> DeploymentResult:
    hist = FixedHistogram.from_samples(samples)
    slo = None
    if alerts or budget_report:
        slo = SLOArtifacts(
            alert_transitions=len(alerts),
            alerts_jsonl=alerts_to_jsonl(alerts),
            budget_report=budget_report or {},
        )
    return DeploymentResult(
        app_name="toy",
        manager="noop",
        load_name="constant",
        windowed_violation_rate=0.02 * label_seed,
        mean_cpu_allocation=4.0,
        per_class_violation_rate={"read": 0.02},
        completed_requests=hist.count,
        wall_seconds=0.0,
        metrics=DeploymentMetrics(
            measure_from_s=0.0,
            duration_s=10.0,
            latency_by_class={"read": hist},
            cpu_by_service=cpu_by_service or {"frontend": 2.0, "db": 1.0},
            final_replicas={},
        ),
        run_digest=None,
        traces=None,
        slo=slo,
    )


BUDGET_ROW = {
    "good": 90.0,
    "bad": 10.0,
    "objective": 0.99,
    "target_s": 0.1,
    "budget_consumed": 0.5,
    "fast_burn": 1.5,
    "slow_burn": 0.5,
}


def two_shards():
    fire = Alert(ALERT_BURN_RATE, "read", "fire", 12.0, 8.0, 4.5, 0.3)
    resolve = Alert(ALERT_BURN_RATE, "read", "resolve", 30.0, 1.0, 1.9, 0.4)
    early = Alert(ALERT_BURN_RATE, "read", "fire", 5.0, 9.0, 5.0, 0.2)
    return {
        "shard-1": make_result(
            1,
            [0.01, 0.02, 0.20],
            alerts=[fire, resolve],
            budget_report={"read": BUDGET_ROW},
        ),
        "shard-2": make_result(2, [0.03, 0.04], alerts=[early]),
    }


def test_class_histograms_merge_across_shards():
    dash = build_dashboard(two_shards(), sla_targets={"read": 0.1})
    assert [row[0] for row in dash.run_rows] == ["shard-1", "shard-2"]
    (cls, count, _mean, _p50, _p99, frac) = dash.class_rows[0]
    assert cls == "read"
    assert count == 5  # 3 + 2: FixedHistogram.merge pooled the shards
    assert abs(frac - 0.2) < 1e-9  # 1 of 5 over the 100 ms target
    # Utilization sums across shards, dominant first.
    assert dash.utilization_rows[0] == ("frontend", 4.0)


def test_alert_timeline_is_time_ordered_across_sources():
    dash = build_dashboard(two_shards())
    times = [alert.time for _label, alert in dash.alerts]
    assert times == sorted(times)
    assert [label for label, _ in dash.alerts] == [
        "shard-2",
        "shard-1",
        "shard-1",
    ]
    # Without SLA targets the violation column is absent, not zero.
    assert dash.class_rows[0][5] is None


def test_burn_rows_only_for_monitored_runs():
    dash = build_dashboard(two_shards())
    assert dash.burn_rows == [("shard-1", "read", 0.5, 1.5, 0.5)]
    bare = build_dashboard({"r": make_result(1, [0.01])})
    assert bare.run_rows[0][4] is None  # no monitor: alerts column dashed
    assert bare.burn_rows == []
    assert bare.alerts == []


def test_text_rendering_is_deterministic_and_sectioned():
    results = two_shards()
    audit = [
        AuditVerdict(
            request_class="read",
            traced_requests=50,
            observed_service="db",
            observed_share=0.9,
            budget_service="frontend",
            budget_share=0.8,
            mismatch=True,
            detail="observed time concentrates on db",
        )
    ]
    dash = build_dashboard(results, sla_targets={"read": 0.1}, audit=audit)
    text = render_dashboard_text(dash)
    again = render_dashboard_text(
        build_dashboard(results, sla_targets={"read": 0.1}, audit=audit)
    )
    assert text == again
    for needle in (
        "runs",
        "latency by class",
        "error-budget burn",
        "alert timeline",
        "MISMATCH",
    ):
        assert needle in text


def test_html_rendering_is_deterministic_and_escaped():
    results = two_shards()
    results["<evil> & shard"] = make_result(3, [0.05])
    dash = build_dashboard(results, sla_targets={"read": 0.1})
    html = render_dashboard_html(dash)
    assert html == render_dashboard_html(build_dashboard(
        results, sla_targets={"read": 0.1}
    ))
    assert html.startswith("<!DOCTYPE html>")
    assert "&lt;evil&gt; &amp; shard" in html
    assert "<evil>" not in html
    assert 'class="fire"' in html  # alert states styled, not escaped


def test_empty_dashboard_renders():
    dash = build_dashboard({})
    assert render_dashboard_text(dash)
    assert render_dashboard_html(dash).startswith("<!DOCTYPE html>")
