"""Unit tests for Fig. 2 heatmap bookkeeping (no simulation)."""

import pytest

from repro.experiments.fig02_backpressure import (
    ChainHeatmap,
    MINUTES,
    THROTTLE_END_MIN,
    THROTTLE_START_MIN,
    backpressure_factor,
)
from repro.net.messages import CallMode


def make_heatmap(rows):
    return ChainHeatmap(mode=CallMode.RPC, tiers=len(rows), values=rows)


def test_backpressure_factor_flat_row_is_one():
    hm = make_heatmap([[10.0] * MINUTES])
    assert backpressure_factor(hm, 1) == pytest.approx(1.0)


def test_backpressure_factor_detects_inflation():
    row = [10.0] * MINUTES
    for m in range(THROTTLE_START_MIN, THROTTLE_END_MIN):
        row[m] = 50.0
    hm = make_heatmap([row])
    assert backpressure_factor(hm, 1) == pytest.approx(5.0)


def test_backpressure_factor_zero_baseline():
    row = [0.0] * MINUTES
    row[THROTTLE_START_MIN] = 5.0
    hm = make_heatmap([row])
    assert backpressure_factor(hm, 1) == float("inf")
    quiet = make_heatmap([[0.0] * MINUTES])
    assert backpressure_factor(quiet, 1) == 1.0


def test_render_contains_all_tiers():
    hm = make_heatmap([[float(m) for m in range(MINUTES)] for _ in range(3)])
    text = hm.render()
    for tier in ("tier-1", "tier-2", "tier-3"):
        assert tier in text
    assert "m0" in text and f"m{MINUTES - 1}" in text


def test_throttle_window_constants():
    assert 0 < THROTTLE_START_MIN < THROTTLE_END_MIN <= MINUTES
