"""Unit test for Fig. 4 curve rendering (no simulation)."""

from repro.core.backpressure import BackpressureProfile, ProfilePoint
from repro.experiments.fig04_thresholds import ThresholdCurves


def test_render_contains_curve_and_threshold():
    points = [
        ProfilePoint(1, (0.5, 0.6, 0.55), tested_p99=0.2, utilization=1.0),
        ProfilePoint(2, (0.05, 0.06, 0.055), tested_p99=0.05, utilization=0.6),
        ProfilePoint(3, (0.004, 0.004, 0.004), tested_p99=0.02, utilization=0.4),
    ]
    curves = ThresholdCurves(
        profiles={
            "post": BackpressureProfile(
                service="post",
                threshold_utilization=0.6,
                converged_cpu_limit=3,
                points=points,
            )
        }
    )
    text = curves.render()
    assert "threshold=60.0%" in text
    assert "converged at limit 3" in text
    assert "cpu_limit" in text
    assert text.count("\n") >= 5  # header + rule + three rows


def test_profile_point_stats():
    point = ProfilePoint(2, (1.0, 2.0, 3.0), tested_p99=0.5, utilization=0.7)
    assert point.proxy_p99_mean == 2.0
    assert point.proxy_p99_std == 1.0
    single = ProfilePoint(1, (5.0,), tested_p99=0.5, utilization=0.9)
    assert single.proxy_p99_std == 0.0
