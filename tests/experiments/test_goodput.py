"""Tests for the cost-efficiency (goodput-per-dollar) analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.goodput import compare_cost_efficiency
from repro.experiments.runner import DeploymentResult


def result(manager, cpus, violations, app="a", load="constant"):
    return DeploymentResult(
        app_name=app,
        manager=manager,
        load_name=load,
        windowed_violation_rate=violations,
        mean_cpu_allocation=cpus,
        per_class_violation_rate={"x": violations, "y": violations},
        completed_requests=1000,
        wall_seconds=1.0,
    )


def test_cheaper_system_has_higher_throughput_per_dollar():
    ursa = result("ursa", cpus=50, violations=0.01)
    sinan = result("sinan", cpus=100, violations=0.20)
    eff = compare_cost_efficiency(ursa, sinan)
    assert eff.throughput_per_dollar_x == pytest.approx(2.0)
    # Goodput gain exceeds throughput gain: Ursa also violates less.
    assert eff.goodput_per_dollar_x > eff.throughput_per_dollar_x


def test_paper_range_example():
    """86.2% CPU reduction -> 7.24x throughput per dollar (§VII-E)."""
    ursa = result("ursa", cpus=100 * (1 - 0.862), violations=0.0)
    ml = result("ml", cpus=100, violations=0.0)
    eff = compare_cost_efficiency(ursa, ml)
    assert eff.throughput_per_dollar_x == pytest.approx(7.24, abs=0.01)


def test_mismatched_runs_rejected():
    a = result("ursa", 10, 0.0, app="a")
    b = result("sinan", 10, 0.0, app="b")
    with pytest.raises(ConfigurationError):
        compare_cost_efficiency(a, b)
    c = result("sinan", 10, 0.0, app="a", load="skewed")
    with pytest.raises(ConfigurationError):
        compare_cost_efficiency(a, c)


def test_zero_cpu_rejected():
    a = result("ursa", 0, 0.0)
    b = result("sinan", 10, 0.0)
    with pytest.raises(ConfigurationError):
        compare_cost_efficiency(a, b)
