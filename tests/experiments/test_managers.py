"""Tests for the manager-attachment factories used by the benchmarks."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.core.exploration import ExplorationResult, LprOption, ServiceProfile
from repro.experiments.managers import MANAGER_NAMES, attach_autoscaler, attach_ursa
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Environment, LogNormal, RandomStreams
from repro.stats.distributions import DEFAULT_PERCENTILE_GRID
from repro.workload.mixes import RequestMix

GRID = DEFAULT_PERCENTILE_GRID


def tiny_spec():
    return AppSpec(
        "tiny",
        services=(
            ServiceSpec("front", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.002, 0.4)}),
            ServiceSpec("work", cpus_per_replica=1,
                        handlers={"req": LogNormal(0.010, 0.5)}),
        ),
        request_classes=(
            RequestClass("req", Call("front", CallMode.RPC, (Call("work"),)),
                         SlaSpec(99.0, 0.3)),
        ),
    )


def synthetic_exploration():
    def options(base):
        out = []
        for k, lpr in enumerate([15.0, 30.0, 60.0]):
            rows = [base * (1 + k) * (1 + 0.1 * i) for i in range(len(GRID))]
            out.append(LprOption(3 - k, {"req": lpr},
                                 {"req": [lpr, lpr * 1.02]},
                                 {"req": rows}, 0.4))
        return out

    return ExplorationResult("tiny", {
        "front": ServiceProfile("front", 1, options(0.004), 30, 1800, "sla"),
        "work": ServiceProfile("work", 1, options(0.015), 30, 1800, "sla"),
    })


def make_app():
    env = Environment()
    return Application(
        tiny_spec(), env=env,
        cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(61), initial_replicas=1,
    )


def test_manager_names_cover_all_five():
    assert set(MANAGER_NAMES) == {"ursa", "sinan", "firm", "auto-a", "auto-b"}


def test_attach_ursa_initialises_and_starts():
    app = make_app()
    app.env.run(until=10)
    attach = attach_ursa(synthetic_exploration(), {"req": 45.0})
    manager = attach(app)
    assert manager.outcome is not None
    # Replicas applied according to the chosen thresholds.
    for name, threshold in manager.outcome.thresholds.items():
        expected = threshold.replicas_for({"req": 45.0})
        assert app.services[name].deployment.desired_replicas == expected


@pytest.mark.parametrize("variant", ["auto-a", "auto-b"])
def test_attach_autoscaler_variants(variant):
    app = make_app()
    app.env.run(until=10)
    attach = attach_autoscaler(variant, RequestMix({"req": 1.0}), rps=40.0)
    scaler = attach(app)
    assert scaler.config.name == variant
    # Warm start provisioned something sensible.
    assert app.services["work"].deployment.desired_replicas >= 1


def test_attach_autoscaler_unknown_variant():
    with pytest.raises(KeyError):
        attach_autoscaler("auto-z")
