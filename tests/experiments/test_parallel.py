"""Tests for the process-pool experiment fan-out.

The expensive grid experiments are exercised by ``benchmarks/``; here a
cheap deterministic cell function stands in for ``run_cell`` so the
determinism contract -- same master seed => identical merged output at
any job count; different master seeds diverge -- is checked in
milliseconds.
"""

import pytest

from repro.experiments.parallel import (
    RunPlan,
    default_jobs,
    partition_seeds,
    run_many,
)
from repro.sim.random import RandomStreams

APPS = ("social-network", "media-service")
LOADS = ("constant", "dynamic")


def cheap_cell(app: str, load: str, seed: int) -> float:
    """Stand-in for a deployment run: deterministic in (app, load, seed)."""
    rng = RandomStreams(seed).stream(f"{app}:{load}")
    return float(rng.random())


def cheap_grid(master_seed: int, jobs: int) -> list[tuple[str, str, float]]:
    """Mirror of run_performance_grid's partition-then-fan-out shape."""
    workloads = [(a, lo) for a in APPS for lo in LOADS]
    seeds = dict(
        zip(workloads, partition_seeds(master_seed, len(workloads), "test-grid"))
    )
    plans = [
        RunPlan(
            cheap_cell,
            {"app": a, "load": lo, "seed": seeds[(a, lo)]},
            label=f"{a}:{lo}",
        )
        for (a, lo) in workloads
    ]
    results = run_many(plans, jobs=jobs)
    return [(a, lo, value) for (a, lo), value in zip(workloads, results)]


def failing_cell() -> None:
    raise RuntimeError("boom in worker")


# -- seed partitioning -----------------------------------------------------


def test_partition_seeds_deterministic():
    assert partition_seeds(23, 8) == partition_seeds(23, 8)


def test_partition_seeds_depend_on_master_seed_and_namespace():
    assert partition_seeds(23, 4) != partition_seeds(24, 4)
    assert partition_seeds(23, 4, "a") != partition_seeds(23, 4, "b")


def test_partition_seeds_are_prefix_stable():
    # Growing the grid appends seeds without perturbing existing cells.
    assert partition_seeds(23, 8)[:4] == partition_seeds(23, 4)


def test_partition_seeds_shape_and_range():
    seeds = partition_seeds(5, 16)
    assert len(seeds) == 16
    assert all(isinstance(s, int) and 0 <= s < 2**31 for s in seeds)
    assert partition_seeds(5, 0) == []
    with pytest.raises(ValueError):
        partition_seeds(5, -1)


# -- run_many --------------------------------------------------------------


def test_jobs4_output_identical_to_jobs1_for_same_master_seed():
    sequential = cheap_grid(23, jobs=1)
    parallel = cheap_grid(23, jobs=4)
    assert parallel == sequential


def test_different_master_seeds_diverge():
    values_a = [v for _, _, v in cheap_grid(23, jobs=4)]
    values_b = [v for _, _, v in cheap_grid(24, jobs=4)]
    assert values_a != values_b


def test_results_come_back_in_plan_order():
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=str(s))
        for s in range(8)
    ]
    expected = [cheap_cell("a", "l", s) for s in range(8)]
    assert run_many(plans, jobs=3) == expected


def test_run_plan_is_callable():
    plan = RunPlan(cheap_cell, {"app": "x", "load": "y", "seed": 1})
    assert plan() == cheap_cell("x", "y", 1)


def test_worker_exception_propagates():
    plans = [RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": 0}),
             RunPlan(failing_cell)]
    with pytest.raises(RuntimeError, match="boom in worker"):
        run_many(plans, jobs=2)
    with pytest.raises(RuntimeError, match="boom in worker"):
        run_many(plans, jobs=1)


def test_run_many_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_many([], jobs=0)


def test_run_many_empty_plans():
    assert run_many([], jobs=4) == []


# -- on_complete -----------------------------------------------------------


def test_on_complete_sequential_fires_in_plan_order():
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=f"s{s}")
        for s in range(5)
    ]
    seen = []
    results = run_many(
        plans, jobs=1, on_complete=lambda plan, result: seen.append((plan, result))
    )
    assert [plan for plan, _ in seen] == plans
    assert [result for _, result in seen] == results


def test_on_complete_pooled_fires_once_per_plan():
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=f"s{s}")
        for s in range(6)
    ]
    seen = {}
    results = run_many(
        plans, jobs=3, on_complete=lambda plan, result: seen.update({plan.label: result})
    )
    # Completion order is nondeterministic, but every plan reports exactly
    # once with its own result, and the returned list stays plan-ordered.
    assert seen == {plan.label: result for plan, result in zip(plans, results)}
    assert results == [cheap_cell("a", "l", s) for s in range(6)]


def test_on_complete_not_called_for_failed_plan():
    plans = [RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": 0}),
             RunPlan(failing_cell)]
    seen = []
    for jobs in (1, 2):
        with pytest.raises(RuntimeError, match="boom in worker"):
            run_many(plans, jobs=jobs, on_complete=lambda plan, _r: seen.append(plan))
    assert all(plan is plans[0] for plan in seen)


# -- default_jobs ----------------------------------------------------------


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert default_jobs() == 7


def test_default_jobs_rejects_bad_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError):
        default_jobs()


def test_default_jobs_without_override(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() >= 1
