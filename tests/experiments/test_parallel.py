"""Tests for the process-pool experiment fan-out.

The expensive grid experiments are exercised by ``benchmarks/``; here a
cheap deterministic cell function stands in for ``run_cell`` so the
determinism contract -- same master seed => identical merged output at
any job count; different master seeds diverge -- is checked in
milliseconds.
"""

import os
import signal

import pytest

from repro.experiments.parallel import (
    RunPlan,
    default_jobs,
    partition_seeds,
    pool_stats,
    run_many,
    shutdown_pool,
    warm_pool,
)
from repro.sim.random import RandomStreams

APPS = ("social-network", "media-service")
LOADS = ("constant", "dynamic")


def cheap_cell(app: str, load: str, seed: int) -> float:
    """Stand-in for a deployment run: deterministic in (app, load, seed)."""
    rng = RandomStreams(seed).stream(f"{app}:{load}")
    return float(rng.random())


def cheap_grid(master_seed: int, jobs: int) -> list[tuple[str, str, float]]:
    """Mirror of run_performance_grid's partition-then-fan-out shape."""
    workloads = [(a, lo) for a in APPS for lo in LOADS]
    seeds = dict(
        zip(workloads, partition_seeds(master_seed, len(workloads), "test-grid"))
    )
    plans = [
        RunPlan(
            cheap_cell,
            {"app": a, "load": lo, "seed": seeds[(a, lo)]},
            label=f"{a}:{lo}",
        )
        for (a, lo) in workloads
    ]
    results = run_many(plans, jobs=jobs)
    return [(a, lo, value) for (a, lo), value in zip(workloads, results)]


def failing_cell() -> None:
    raise RuntimeError("boom in worker")


def suicide_cell() -> None:
    """Kill the worker process outright (simulates an OOM kill)."""
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture()
def cold_pool():
    """Start and finish with no shared pool, whatever ran before."""
    shutdown_pool()
    yield
    shutdown_pool()


# -- seed partitioning -----------------------------------------------------


def test_partition_seeds_deterministic():
    assert partition_seeds(23, 8) == partition_seeds(23, 8)


def test_partition_seeds_depend_on_master_seed_and_namespace():
    assert partition_seeds(23, 4) != partition_seeds(24, 4)
    assert partition_seeds(23, 4, "a") != partition_seeds(23, 4, "b")


def test_partition_seeds_are_prefix_stable():
    # Growing the grid appends seeds without perturbing existing cells.
    assert partition_seeds(23, 8)[:4] == partition_seeds(23, 4)


def test_partition_seeds_shape_and_range():
    seeds = partition_seeds(5, 16)
    assert len(seeds) == 16
    assert all(isinstance(s, int) and 0 <= s < 2**31 for s in seeds)
    assert partition_seeds(5, 0) == []
    with pytest.raises(ValueError):
        partition_seeds(5, -1)


# -- run_many --------------------------------------------------------------


def test_jobs4_output_identical_to_jobs1_for_same_master_seed():
    sequential = cheap_grid(23, jobs=1)
    parallel = cheap_grid(23, jobs=4)
    assert parallel == sequential


def test_different_master_seeds_diverge():
    values_a = [v for _, _, v in cheap_grid(23, jobs=4)]
    values_b = [v for _, _, v in cheap_grid(24, jobs=4)]
    assert values_a != values_b


def test_results_come_back_in_plan_order():
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=str(s))
        for s in range(8)
    ]
    expected = [cheap_cell("a", "l", s) for s in range(8)]
    assert run_many(plans, jobs=3) == expected


def test_run_plan_is_callable():
    plan = RunPlan(cheap_cell, {"app": "x", "load": "y", "seed": 1})
    assert plan() == cheap_cell("x", "y", 1)


def test_worker_exception_propagates():
    plans = [RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": 0}),
             RunPlan(failing_cell)]
    with pytest.raises(RuntimeError, match="boom in worker"):
        run_many(plans, jobs=2)
    with pytest.raises(RuntimeError, match="boom in worker"):
        run_many(plans, jobs=1)


def test_run_many_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_many([], jobs=0)


def test_run_many_empty_plans():
    assert run_many([], jobs=4) == []


# -- on_complete -----------------------------------------------------------


def test_on_complete_sequential_fires_in_plan_order():
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=f"s{s}")
        for s in range(5)
    ]
    seen = []
    results = run_many(
        plans, jobs=1, on_complete=lambda plan, result: seen.append((plan, result))
    )
    assert [plan for plan, _ in seen] == plans
    assert [result for _, result in seen] == results


def test_on_complete_pooled_fires_once_per_plan():
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=f"s{s}")
        for s in range(6)
    ]
    seen = {}
    results = run_many(
        plans, jobs=3, on_complete=lambda plan, result: seen.update({plan.label: result})
    )
    # Completion order is nondeterministic, but every plan reports exactly
    # once with its own result, and the returned list stays plan-ordered.
    assert seen == {plan.label: result for plan, result in zip(plans, results)}
    assert results == [cheap_cell("a", "l", s) for s in range(6)]


def test_on_complete_not_called_for_failed_plan():
    plans = [RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": 0}),
             RunPlan(failing_cell)]
    seen = []
    for jobs in (1, 2):
        with pytest.raises(RuntimeError, match="boom in worker"):
            run_many(plans, jobs=jobs, on_complete=lambda plan, _r: seen.append(plan))
    assert all(plan is plans[0] for plan in seen)


# -- the persistent pool ---------------------------------------------------


def test_pool_persists_across_consecutive_grids(cold_pool):
    first = cheap_grid(23, jobs=2)
    second = cheap_grid(31, jobs=2)
    stats = pool_stats()
    assert stats["alive"]
    assert stats["workers"] >= 2
    assert stats["grids_served"] == 2
    # Reuse never leaks state between grids: both merged outputs equal
    # their sequential counterparts.
    assert first == cheap_grid(23, jobs=1)
    assert second == cheap_grid(31, jobs=1)


def test_jobs_invariance_on_a_wider_warm_pool(cold_pool):
    # A pool warmed for 4 workers serving a jobs=2 grid must produce the
    # same merged output as sequential: the sliding window caps in-flight
    # work, and determinism never depends on where plans run.
    warm_pool(4)
    assert cheap_grid(23, jobs=2) == cheap_grid(23, jobs=1)
    assert pool_stats()["workers"] == 4


def test_pool_grows_but_never_shrinks(cold_pool):
    warm_pool(2)
    assert pool_stats()["workers"] == 2
    warm_pool(3)
    assert pool_stats()["workers"] == 3
    warm_pool(2)  # smaller request keeps the bigger pool
    assert pool_stats()["workers"] == 3


def test_shutdown_pool_resets_and_is_idempotent(cold_pool):
    warm_pool(2)
    cheap_grid(23, jobs=2)
    shutdown_pool()
    shutdown_pool()
    assert pool_stats() == {"alive": False, "workers": 0, "grids_served": 0}


def test_prewarm_runs_once_in_parent(cold_pool):
    calls = []
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}) for s in range(4)
    ]
    run_many(plans, jobs=2, prewarm=lambda: calls.append(os.getpid()))
    assert calls == [os.getpid()]
    # The sequential short-circuit honours prewarm too.
    run_many(plans[:1], jobs=1, prewarm=lambda: calls.append(os.getpid()))
    assert calls == [os.getpid()] * 2


def test_chunked_submission_preserves_plan_order(cold_pool):
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}, label=f"s{s}")
        for s in range(7)
    ]
    expected = [cheap_cell("a", "l", s) for s in range(7)]
    # Chunk sizes that divide unevenly, exceed the grid, or degenerate to
    # one plan per message all preserve plan order.
    for chunk_size in (1, 3, 99):
        assert run_many(plans, jobs=2, chunk_size=chunk_size) == expected


def test_broken_pool_recovers_on_next_grid(cold_pool):
    # SIGKILLed workers poison a ProcessPoolExecutor permanently; the
    # next warm_pool must detect the carcass and replace it instead of
    # failing every later grid in the process.
    from concurrent.futures.process import BrokenProcessPool

    plans = [RunPlan(suicide_cell), RunPlan(suicide_cell)]
    with pytest.raises(BrokenProcessPool):
        run_many(plans, jobs=2)
    assert cheap_grid(23, jobs=2) == cheap_grid(23, jobs=1)


def test_on_complete_exception_leaves_pool_usable(cold_pool):
    plans = [
        RunPlan(cheap_cell, {"app": "a", "load": "l", "seed": s}) for s in range(6)
    ]

    def boom(_plan, _result):
        raise RuntimeError("callback boom")

    with pytest.raises(RuntimeError, match="callback boom"):
        run_many(plans, jobs=2, chunk_size=1, on_complete=boom)
    # The cancelled grid left no debris: the same pool serves the next one.
    assert cheap_grid(23, jobs=2) == cheap_grid(23, jobs=1)


# -- default_jobs ----------------------------------------------------------


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert default_jobs() == 7


def test_default_jobs_rejects_bad_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError):
        default_jobs()


def test_default_jobs_without_override(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() >= 1
