"""Tests for experiment report rendering and the shared runner helpers."""

import pytest

from repro.experiments.report import render_heatmap, render_series, render_table
from repro.experiments.runner import scale_profile


def test_render_table_alignment():
    text = render_table(
        ["name", "value"],
        [("a", 1), ("long-name", 22.5)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("---")
    assert "long-name" in lines[4]


def test_render_series():
    text = render_series("s", [(0.0, 1.0), (60.0, 2.0)], "t", "v")
    assert "s  [t -> v]" in text
    assert len(text.splitlines()) == 3


def test_render_heatmap_shape_checks():
    text = render_heatmap("H", ["r1"], ["c1", "c2"], [[1.0, 2.0]])
    assert "r1" in text
    with pytest.raises(ValueError):
        render_heatmap("H", ["r1", "r2"], ["c1"], [[1.0]])
    with pytest.raises(ValueError):
        render_heatmap("H", ["r1"], ["c1", "c2"], [[1.0]])


def test_scale_profile_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert scale_profile().name == "quick"
    monkeypatch.setenv("REPRO_SCALE", "full")
    profile = scale_profile()
    assert profile.name == "full"
    assert profile.deployment_s > 1000
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        scale_profile()


def test_quick_profile_is_cheaper_than_full():
    from repro.experiments.runner import _PROFILES

    quick, full = _PROFILES["quick"], _PROFILES["full"]
    assert quick.deployment_s < full.deployment_s
    assert quick.sinan_samples < full.sinan_samples
    assert quick.exploration_samples_per_step <= full.exploration_samples_per_step
