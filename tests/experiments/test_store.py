"""Results store: sidecar round-trips, mismatch detection, offline checks."""

from __future__ import annotations

import json

import pytest

from repro.experiments import store
from repro.experiments.store import (
    ResultsMismatchError,
    RunMeta,
    check_results,
    deployment_summaries,
    load_sidecar,
    save_result,
    sidecar_path,
)


@pytest.fixture(autouse=True)
def _isolated_results_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.delenv("REPRO_RESULTS_UPDATE", raising=False)


def _meta(**overrides) -> RunMeta:
    base = dict(
        experiment="figXX",
        scale="quick",
        seeds={"cell": 11},
        digests={"cell": "ab" * 16},
        summaries={"cls": {"p99_s": 0.25, "violation_rate": 0.01}},
    )
    base.update(overrides)
    return RunMeta(**base)


def test_save_writes_text_and_valid_sidecar():
    side = save_result("figXX", "rendered table", _meta())
    assert side == sidecar_path("figXX")
    assert (store.results_dir() / "figXX.txt").read_text() == "rendered table\n"
    sidecar = load_sidecar("figXX")
    assert sidecar is not None
    assert sidecar["experiment"] == "figXX"
    assert sidecar["digests"] == {"cell": "ab" * 16}
    assert sidecar["seeds"] == {"cell": 11}
    assert sidecar["package_version"]
    assert check_results() == []


def test_regeneration_with_same_run_is_byte_identical():
    save_result("figXX", "rendered table", _meta())
    first = sidecar_path("figXX").read_bytes()
    save_result("figXX", "rendered table", _meta())
    assert sidecar_path("figXX").read_bytes() == first


def test_digest_mismatch_fails_loudly():
    save_result("figXX", "rendered table", _meta())
    with pytest.raises(ResultsMismatchError, match="digests changed"):
        save_result(
            "figXX", "rendered table", _meta(digests={"cell": "cd" * 16})
        )


def test_text_drift_fails_for_deterministic_outputs():
    save_result("figXX", "rendered table", _meta())
    with pytest.raises(ResultsMismatchError, match="text changed"):
        save_result("figXX", "different render", _meta())


def test_nondeterministic_text_may_drift():
    meta = _meta(deterministic=False)
    save_result("figXX", "took 12.3 ms", meta)
    save_result("figXX", "took 45.6 ms", meta)  # no raise
    assert check_results() == []


def test_update_env_var_accepts_the_new_run(monkeypatch):
    save_result("figXX", "rendered table", _meta())
    monkeypatch.setenv("REPRO_RESULTS_UPDATE", "1")
    save_result("figXX", "rendered table", _meta(digests={"cell": "cd" * 16}))
    sidecar = load_sidecar("figXX")
    assert sidecar["digests"] == {"cell": "cd" * 16}


def test_identity_change_overwrites_without_error():
    save_result("figXX", "rendered table", _meta())
    # Different seed partition = a different experiment configuration,
    # not a reproducibility failure.
    save_result(
        "figXX",
        "other render",
        _meta(seeds={"cell": 99}, digests={"cell": "cd" * 16}),
    )
    assert load_sidecar("figXX")["seeds"] == {"cell": 99}


def test_check_detects_injected_text_mismatch():
    save_result("figXX", "rendered table", _meta())
    txt = store.results_dir() / "figXX.txt"
    txt.write_text("tampered\n")
    problems = check_results()
    assert len(problems) == 1
    assert "does not match the recorded run" in problems[0]
    assert store.main([]) == 1


def test_check_detects_tampered_sidecar():
    save_result("figXX", "rendered table", _meta())
    side = sidecar_path("figXX")
    payload = json.loads(side.read_text())
    payload["digests"]["cell"] = "ef" * 16  # forge without re-checksumming
    side.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    problems = check_results()
    assert len(problems) == 1
    assert "self-checksum mismatch" in problems[0]


def test_check_detects_stale_sidecar_and_strict_missing():
    save_result("figXX", "rendered table", _meta())
    (store.results_dir() / "figXX.txt").unlink()
    (store.results_dir() / "other.txt").write_text("no sidecar\n")
    problems = check_results()
    assert any("stale sidecar" in p for p in problems)
    assert not any("other" in p for p in problems)
    strict_problems = check_results(strict=True)
    assert any("other: missing sidecar" in p for p in strict_problems)


def test_invalid_json_sidecar_is_reported():
    save_result("figXX", "rendered table", _meta())
    sidecar_path("figXX").write_text("{not json")
    problems = check_results()
    assert problems == ["figXX: sidecar is not valid JSON"]


def test_digest_round_trip_through_a_real_run():
    # Write -> regenerate -> compare, with actual deployments: the same
    # seed must save cleanly twice (matching digests, identical sidecar),
    # and a different seed must be treated as a new configuration.
    from repro.experiments.store import deployment_summaries
    from tests.experiments.test_trace_determinism import traced_run

    def save_run(seed: int):
        result = traced_run(seed, tracing=False)
        meta = RunMeta(
            experiment="store-round-trip",
            scale="quick",
            seeds={"run": seed},
            digests={"run": result.run_digest},
            summaries=deployment_summaries(result),
        )
        return save_result("store-round-trip", "digest-round-trip", meta)

    save_run(11)
    first = sidecar_path("store-round-trip").read_bytes()
    save_run(11)  # same seed reproduces: no raise, identical sidecar
    assert sidecar_path("store-round-trip").read_bytes() == first
    recorded = json.loads(first)
    assert recorded["digests"]["run"]
    assert recorded["summaries"]  # per-class metric summaries present
    save_run(12)  # new seed = new identity: overwrite, no raise
    assert json.loads(sidecar_path("store-round-trip").read_bytes()) != recorded


def test_deployment_summaries_shape():
    from tests.experiments.test_trace_determinism import traced_run

    result = traced_run(11, tracing=False)
    summaries = deployment_summaries(result)
    assert summaries  # one entry per request class with traffic
    for stats in summaries.values():
        assert "count" in stats
        if stats["count"]:
            assert {"mean_s", "p50_s", "p95_s", "p99_s"} <= set(stats)


# -- alert/audit pinning and HTML artifacts ----------------------------


def test_alerts_and_audits_round_trip_only_when_present():
    save_result("figXX", "rendered table", _meta())
    # Runs without a monitor emit no alerts/audits keys at all, so the
    # sidecars committed before the SLO layer stay byte-identical.
    sidecar = load_sidecar("figXX")
    assert "alerts" not in sidecar
    assert "audits" not in sidecar
    meta = _meta(
        alerts={"cell": "ab" * 16},
        audits={"read": {"mismatch": False}},
    )
    save_result("figYY", "monitored table", meta)
    sidecar = load_sidecar("figYY")
    assert sidecar["alerts"] == {"cell": "ab" * 16}
    assert sidecar["audits"] == {"read": {"mismatch": False}}
    assert check_results() == []


def test_alert_stream_drift_fails_loudly():
    save_result("figXX", "rendered table", _meta(alerts={"cell": "ab" * 16}))
    with pytest.raises(ResultsMismatchError, match="alert-stream digests"):
        save_result(
            "figXX", "rendered table", _meta(alerts={"cell": "cd" * 16})
        )


def test_artifact_files_saved_and_checked():
    meta = _meta()
    save_result(
        "figXX",
        "rendered table",
        meta,
        artifacts={"figXX_report.html": "<!DOCTYPE html>\n<p>dash</p>\n"},
    )
    html = store.results_dir() / "figXX_report.html"
    assert html.read_text().startswith("<!DOCTYPE html>")
    sidecar = load_sidecar("figXX")
    assert set(sidecar["artifacts"]) == {"figXX_report.html"}
    assert check_results() == []
    # Tampering with the artifact is caught by the offline check.
    html.write_text("<!DOCTYPE html>\n<p>tampered</p>\n")
    problems = check_results()
    assert len(problems) == 1
    assert "figXX_report.html" in problems[0]
    # So is deleting it.
    html.unlink()
    problems = check_results()
    assert len(problems) == 1
    assert "missing" in problems[0]


def test_artifact_filenames_validated():
    for bad in ("../escape.html", "a/b.html", ".hidden"):
        with pytest.raises(ValueError, match="invalid artifact name"):
            save_result(
                "figXX", "rendered table", _meta(), artifacts={bad: "x"}
            )


# -- cross-scale layout ------------------------------------------------


def test_full_scale_routes_to_subdirectory():
    save_result("figXX", "quick render", _meta())
    side = save_result("figXX", "full render", _meta(scale="full"))
    assert side == store.scale_dir("full") / "figXX.meta.json"
    assert side.parent == store.results_dir() / "full"
    # The quick output at the root is untouched.
    assert (store.results_dir() / "figXX.txt").read_text() == "quick render\n"
    assert (store.results_dir() / "full" / "figXX.txt").read_text() == (
        "full render\n"
    )
    assert load_sidecar("figXX")["scale"] == "quick"
    assert load_sidecar("figXX", "full")["scale"] == "full"
    assert check_results() == []


def test_scales_have_independent_mismatch_detection():
    save_result("figXX", "quick render", _meta())
    save_result("figXX", "full render", _meta(scale="full"))
    # Same experiment, different scale: no identity clash across dirs...
    save_result("figXX", "quick render", _meta())
    # ...but within one scale the usual guarantees hold.
    with pytest.raises(ResultsMismatchError, match="text changed"):
        save_result("figXX", "different full render", _meta(scale="full"))


def test_check_results_covers_present_scales():
    save_result("figXX", "quick render", _meta())
    save_result("figXX", "full render", _meta(scale="full"))
    txt = store.results_dir() / "full" / "figXX.txt"
    txt.write_text("tampered\n")
    problems = check_results()
    assert len(problems) == 1
    assert problems[0].startswith("full/figXX:")
    assert store.present_scales() == ["quick", "full"]


def test_scale_qualified_names():
    save_result("figXX", "full render", _meta(scale="full"))
    assert check_results(["full/figXX"]) == []
    missing = check_results(["full/figYY"])
    assert missing == ["full/figYY: results/full/figYY.txt does not exist"]


def test_misplaced_sidecar_is_flagged():
    save_result("figXX", "full render", _meta(scale="full"))
    # Copy the full output (txt + sidecar) to the quick root: internally
    # consistent, but it sits in the wrong directory.
    root = store.results_dir()
    for suffix in (".txt", ".meta.json"):
        (root / f"figXX{suffix}").write_bytes(
            (root / "full" / f"figXX{suffix}").read_bytes()
        )
    problems = check_results()
    assert len(problems) == 1
    assert "records scale 'full'" in problems[0]


def test_traces_dir_is_not_a_scale():
    (store.results_dir() / "traces").mkdir()
    (store.results_dir() / "traces" / "run.jsonl").write_text("{}\n")
    save_result("figXX", "quick render", _meta())
    assert store.present_scales() == ["quick"]
    assert check_results() == []


def test_invalid_scale_names_rejected():
    for bad in ("..", "full/extra", "traces"):
        with pytest.raises(ValueError, match="invalid scale name"):
            store.scale_dir(bad)


def test_cli_reports_scales(capsys):
    save_result("figXX", "quick render", _meta())
    save_result("figXX", "full render", _meta(scale="full"))
    assert store.main([]) == 0
    out = capsys.readouterr().out
    assert "2 result(s) across 2 scale(s) [quick, full]" in out
