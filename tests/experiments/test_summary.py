"""Tests for the results digest."""


from repro.experiments.summary import ORDER, summarize


def test_summarize_empty_dir(tmp_path):
    text = summarize(tmp_path)
    assert "missing" in text
    assert "fig02_backpressure" in text


def test_summarize_includes_present_files(tmp_path):
    (tmp_path / "fig02_backpressure.txt").write_text("HEATMAP DATA\n")
    text = summarize(tmp_path)
    assert "Fig. 2" in text
    assert "HEATMAP DATA" in text
    assert "fig04_thresholds" in text  # still listed as missing


def test_order_covers_all_benchmarked_results():
    stems = {stem for stem, _ in ORDER}
    expected = {
        "fig02_backpressure", "fig04_thresholds", "table05_exploration",
        "fig09_model_accuracy", "fig10_model_accuracy",
        "fig11_12_performance", "fig13_diurnal", "table06_control_plane",
        "fig14_service_change", "ablation_grid", "ablation_backpressure",
        "ablation_ttest",
    }
    assert stems == expected
