"""End-to-end tracing determinism through the process-pool fan-out.

The span dumps and run digests are part of the repro contract: the same
seed must yield byte-identical trace artefacts at any job count, and
enabling tracing/digesting must not perturb the simulated timeline
(pure-observer invariant, checked here at the deployment level).
"""

from repro.experiments.artifacts import app_spec
from repro.experiments.parallel import RunPlan, run_many
from repro.api import RunOptions, TracingOptions, run_deployment
from repro.workload.defaults import default_mix_for
from repro.workload.patterns import ConstantLoad

SEEDS = (11, 12)


def attach_noop(app) -> None:
    """Stand-in resource manager: fixed replicas, nothing to attach."""


def traced_run(seed: int, tracing: bool = True):
    """A short social-network deployment with digest (and tracing) on."""
    return run_deployment(
        app_spec("social-network"),
        default_mix_for("social-network"),
        ConstantLoad(25.0),
        attach_noop,
        manager_name="noop",
        load_name="constant",
        options=RunOptions(
            seed=seed,
            duration_s=50.0,
            measure_from_s=15.0,
            tracing=(
                TracingOptions(sample_every_n=3, validate=True)
                if tracing
                else None
            ),
            digest=True,
        ),
    )


def _artifacts(result):
    return (
        result.run_digest,
        result.traces.traced_requests,
        result.traces.jsonl,
        result.traces.summary,
    )


def test_trace_artifacts_identical_across_job_counts():
    plans = [
        RunPlan(traced_run, {"seed": seed}, label=f"seed={seed}") for seed in SEEDS
    ]
    sequential = run_many(plans, jobs=1)
    pooled = run_many(plans, jobs=2)
    assert [_artifacts(r) for r in sequential] == [_artifacts(r) for r in pooled]
    for result in sequential:
        # validate=True already raised inside the run if any sampled
        # request's attribution missed its e2e latency by >1e-6.
        assert result.traces.traced_requests > 0
        assert result.traces.jsonl.endswith("\n")
        assert "traced" in result.traces.summary
    # Different seeds produce different timelines and different dumps.
    assert sequential[0].run_digest != sequential[1].run_digest
    assert sequential[0].traces.jsonl != sequential[1].traces.jsonl


def test_tracing_does_not_perturb_the_timeline():
    traced = traced_run(SEEDS[0])
    untraced = traced_run(SEEDS[0], tracing=False)
    assert untraced.traces is None
    assert traced.run_digest == untraced.run_digest
    assert traced.completed_requests == untraced.completed_requests
    assert traced.windowed_violation_rate == untraced.windowed_violation_rate
