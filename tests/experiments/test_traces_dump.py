"""``dump_slowest_traces``: per-class selection and deterministic files."""

import json

import pytest

from repro.experiments.traces import dump_slowest_traces
from repro.telemetry.tracing import (
    PHASE_SERVICE,
    Trace,
    traces_to_jsonl,
)


def _trace(request_id: int, request_class: str, latency: float) -> Trace:
    trace = Trace(request_id, request_class, arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_SERVICE, 0.0, latency)
    root.response_end = latency
    root.end = latency
    trace.completion = latency
    return trace


@pytest.fixture
def jsonl():
    return traces_to_jsonl(
        [
            _trace(1, "read", 0.5),
            _trace(2, "read", 2.0),
            _trace(3, "read", 1.0),
            _trace(4, "write", 3.0),
        ]
    )


def test_picks_n_slowest_per_class(jsonl, tmp_path):
    paths = dump_slowest_traces({"cell": jsonl}, 2, tmp_path, "exp")
    names = [p.name for p in paths]
    # read: ids 2 (2.0s) and 3 (1.0s); write: id 4.  Id 1 is dropped.
    assert names == [
        "cell.read.r000002.trace.json",
        "cell.read.r000003.trace.json",
        "cell.write.r000004.trace.json",
    ]
    assert all(p.parent == tmp_path / "exp" for p in paths)


def test_files_are_chrome_traces(jsonl, tmp_path):
    (path, *_rest) = dump_slowest_traces({"cell": jsonl}, 1, tmp_path, "exp")
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_equal_latency_ties_break_by_request_id(tmp_path):
    text = traces_to_jsonl([_trace(9, "read", 1.0), _trace(5, "read", 1.0)])
    (path,) = dump_slowest_traces({"c": text}, 1, tmp_path, "exp")
    assert path.name == "c.read.r000005.trace.json"


def test_source_labels_are_sanitized(jsonl, tmp_path):
    paths = dump_slowest_traces({"app/load:mgr": jsonl}, 1, tmp_path, "e x")
    assert all(p.name.startswith("app-load-mgr.") for p in paths)
    assert all(p.parent.name == "e-x" for p in paths)


def test_rejects_nonpositive_n(jsonl, tmp_path):
    with pytest.raises(ValueError, match="n must be >= 1"):
        dump_slowest_traces({"cell": jsonl}, 0, tmp_path, "exp")
