"""Allocator unit tests: pure functions, deterministic, conservative."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    ALLOCATORS,
    CellSignal,
    CellSpec,
    FleetSpec,
    default_fleet,
    greedy_rebalance,
    static_equal,
)


def _spec(n_cells=4, total_nodes=16, min_nodes=2):
    cells = tuple(
        CellSpec(f"cell{i}", "media-service", "constant", seed=100 + i)
        for i in range(n_cells)
    )
    return FleetSpec(
        cells=cells,
        seed=7,
        total_nodes=total_nodes,
        min_nodes_per_cell=min_nodes,
    )


def _signal(pressure, util=0.4, capped=0):
    return CellSignal(
        pressure=pressure,
        violation_rate=0.0,
        utilization=util,
        capped_scale_ups=capped,
    )


def test_static_equal_splits_with_name_order_remainder():
    budgets = static_equal(_spec(n_cells=3, total_nodes=11))
    assert budgets == {"cell0": 4, "cell1": 4, "cell2": 3}
    assert sum(budgets.values()) == 11


def test_static_equal_at_the_spec_floor():
    # FleetSpec itself rejects budgets below min * cells, so the
    # tightest valid split leaves every cell exactly at the floor.
    budgets = static_equal(_spec(n_cells=4, total_nodes=9, min_nodes=2))
    assert budgets == {"cell0": 3, "cell1": 2, "cell2": 2, "cell3": 2}


def test_greedy_moves_nodes_to_capped_high_pressure_cell():
    spec = _spec(n_cells=4, total_nodes=16)
    signals = {
        "cell0": _signal(25.0, util=0.9, capped=7),
        "cell1": _signal(0.1, util=0.3),
        "cell2": _signal(0.0, util=0.3),
        "cell3": _signal(0.2, util=0.3),
    }
    budgets = greedy_rebalance(spec, signals)
    assert sum(budgets.values()) == spec.total_nodes
    assert budgets["cell0"] > 4  # the starved cell gained nodes
    assert all(budgets[c] >= spec.min_nodes_per_cell for c in budgets)


def test_greedy_is_static_when_no_cell_is_capped():
    """High pressure without refused scale-ups is manager lag, not a
    capacity problem -- nodes must not move."""
    spec = _spec(n_cells=4, total_nodes=16)
    signals = {
        "cell0": _signal(50.0, util=0.5, capped=0),
        "cell1": _signal(0.1),
        "cell2": _signal(0.0),
        "cell3": _signal(0.2),
    }
    assert greedy_rebalance(spec, signals) == static_equal(spec)


def test_greedy_never_steals_from_busy_or_capped_donors():
    spec = _spec(n_cells=4, total_nodes=16)
    signals = {
        "cell0": _signal(25.0, util=0.9, capped=3),
        "cell1": _signal(0.1, util=0.7),  # 0.7 * 4/3 > 0.8: too busy
        "cell2": _signal(0.0, util=0.2, capped=1),  # capped: never donates
        "cell3": _signal(0.0, util=0.2),
    }
    budgets = greedy_rebalance(spec, signals)
    assert budgets["cell1"] == 4
    assert budgets["cell2"] == 4
    assert budgets["cell3"] < 4


def test_greedy_is_pure():
    spec = _spec(n_cells=4, total_nodes=16)
    signals = {
        "cell0": _signal(25.0, util=0.9, capped=7),
        "cell1": _signal(0.1, util=0.3),
        "cell2": _signal(0.0, util=0.3),
        "cell3": _signal(0.2, util=0.3),
    }
    first = greedy_rebalance(spec, signals)
    assert all(
        greedy_rebalance(spec, signals) == first for _ in range(3)
    )


def test_allocator_registry_names():
    assert set(ALLOCATORS) == {"static", "greedy"}


def test_greedy_requires_signals_for_every_cell():
    spec = _spec(n_cells=3, total_nodes=9)
    with pytest.raises(ConfigurationError):
        greedy_rebalance(spec, {"cell0": _signal(1.0)})


def test_default_fleet_seed_derivation_is_name_keyed():
    """Growing the fleet never reseeds existing cells."""
    small = {c.name: c.seed for c in default_fleet(4).cells}
    large = {c.name: c.seed for c in default_fleet(8).cells}
    for name, seed in small.items():
        assert large[name] == seed


def test_fleet_spec_validation():
    cells = (
        CellSpec("a", "media-service", "constant", 1),
        CellSpec("a", "video-pipeline", "constant", 2),
    )
    with pytest.raises(ConfigurationError):
        FleetSpec(cells=cells, total_nodes=8)
    with pytest.raises(ConfigurationError):
        FleetSpec(
            cells=(cells[0],), total_nodes=1, min_nodes_per_cell=2
        )
