"""Fleet determinism: jobs-invariance, order-invariance, allocator purity.

Uses a deliberately tiny, uncontended two-cell fleet (media + video, the
two cheapest apps) so three full fleet runs stay test-suite friendly;
the allocator-behaviour cases live in ``test_allocator.py`` as pure
unit tests.
"""

import pytest

from repro.api import RunOptions, SLOOptions, simulate_fleet
from repro.fleet import (
    CellSpec,
    FleetSpec,
    experiment_meta,
    fleet_report,
    plan_fleet,
    static_equal,
)

CELLS = (
    CellSpec("a-media", "media-service", "constant", seed=101),
    CellSpec("b-video", "video-pipeline", "constant", seed=202),
)

OPTIONS = RunOptions(
    digest=True,
    scale="fleet",
    duration_s=120.0,
    measure_from_s=30.0,
    slo=SLOOptions(),
)


def _spec(cells=CELLS):
    return FleetSpec(
        cells=cells,
        seed=7,
        total_nodes=6,
        node_cpus=8,
        node_memory_gb=32.0,
        min_nodes_per_cell=2,
    )


@pytest.fixture(scope="module")
def baseline():
    return simulate_fleet(_spec(), options=OPTIONS, jobs=1)


def test_plan_lowering(baseline):
    plan = plan_fleet(_spec(), OPTIONS)
    budgets = static_equal(_spec())
    probes = plan.probe_plans(budgets)
    assert [p.label for p in probes] == [
        "fleet:probe:a-media",
        "fleet:probe:b-video",
    ]
    probe_options = probes[0].kwargs["options"]
    assert probe_options.cluster.nodes == 3
    assert probe_options.cluster.node_cpus == 8
    assert probe_options.cluster.cap_on_full is True
    assert probe_options.duration_s == 50.0  # 5/12 of the main epoch
    assert probe_options.seed == 101
    mains = plan.main_plans({"greedy": budgets, "static": budgets})
    assert [p.label for p in mains] == [
        "fleet:greedy:a-media",
        "fleet:greedy:b-video",
        "fleet:static:a-media",
        "fleet:static:b-video",
    ]
    assert mains[0].kwargs["options"].duration_s == 120.0


def test_fleet_is_jobs_invariant(baseline):
    """jobs=2 merges to byte-identical digests and dashboard text."""
    parallel = simulate_fleet(_spec(), options=OPTIONS, jobs=2)
    assert parallel.digests() == baseline.digests()
    assert parallel.fleet_digest() == baseline.fleet_digest()
    assert fleet_report(parallel)[0] == fleet_report(baseline)[0]


def test_fleet_is_cell_order_invariant(baseline):
    """Submitting cells in a different order changes nothing."""
    shuffled = simulate_fleet(
        _spec(cells=tuple(reversed(CELLS))), options=OPTIONS, jobs=1
    )
    assert shuffled.digests() == baseline.digests()
    assert shuffled.fleet_digest() == baseline.fleet_digest()
    assert fleet_report(shuffled)[0] == fleet_report(baseline)[0]


def test_allocator_purity(baseline):
    """Cells whose budgets agree across allocators ran identically."""
    static = baseline.outcomes["static"]
    greedy = baseline.outcomes["greedy"]
    # An uncontended fleet never rebalances...
    assert greedy.budgets == static.budgets
    # ...and equal budgets mean byte-identical runs, per cell.
    for name in static.results:
        assert (
            static.results[name].run_digest
            == greedy.results[name].run_digest
        )


def test_fleet_meta_routes_to_fleet_scale(baseline):
    meta = experiment_meta(baseline)
    assert meta.experiment == "fleet"
    assert meta.scale == "fleet"
    assert meta.extra["fleet_digest"] == baseline.fleet_digest()
    assert set(meta.seeds) == {"a-media", "b-video"}
    assert set(meta.extra["budgets"]) == {"greedy", "static"}
    # Every main-epoch run is digested and summarised.
    assert set(meta.summaries) == {
        f"{alloc}/{cell}"
        for alloc in ("greedy", "static")
        for cell in ("a-media", "b-video")
    }
