"""Tests for call trees, requests and message queues."""

import pytest

from repro.errors import TopologyError
from repro.net.messages import Call, Request
from repro.net.mq import MessageQueue
from repro.sim import Environment


def test_call_validation():
    with pytest.raises(TopologyError):
        Call("")
    with pytest.raises(TopologyError):
        Call("svc", repeat=0)


def test_call_services_preorder_with_duplicates():
    tree = Call("a", children=(Call("b", children=(Call("c"),)), Call("b")))
    assert tree.services() == ["a", "b", "c", "b"]


def test_call_walk_and_depth():
    tree = Call("a", children=(Call("b", children=(Call("c"),)), Call("d")))
    assert [c.service for c in tree.walk()] == ["a", "b", "c", "d"]
    assert tree.depth() == 3
    assert Call("leaf").depth() == 1


def test_request_latency_requires_completion():
    request = Request(request_class="r", arrival_time=1.0)
    with pytest.raises(ValueError):
        _ = request.latency
    request.completion_time = 3.5
    assert request.latency == 2.5


def test_request_ids_are_run_local():
    # Ids come from the owning Application, never from process-global
    # state (PAR002): ad-hoc requests stay unassigned.
    a = Request(request_class="r", arrival_time=0)
    b = Request(request_class="r", arrival_time=0, request_id=7)
    assert a.request_id == -1
    assert b.request_id == 7


def test_mq_priority_ordering():
    env = Environment()
    queue = MessageQueue(env, "q")
    queue.publish("low", priority=1)
    queue.publish("high", priority=0)
    queue.publish("high2", priority=0)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield queue.consume()
            got.append(MessageQueue.payload_of(item))

    env.process(consumer(env))
    env.run()
    assert got == ["high", "high2", "low"]
    assert queue.published == 3


def test_mq_publish_never_blocks():
    env = Environment()
    queue = MessageQueue(env, "q")
    for i in range(10_000):
        queue.publish(i)
    assert queue.depth == 10_000


def test_mq_cancel_consume():
    env = Environment()
    queue = MessageQueue(env, "q")
    event = queue.consume()
    queue.cancel_consume(event)
    queue.publish("x")
    # The cancelled getter must not swallow the message.
    assert queue.depth == 1
