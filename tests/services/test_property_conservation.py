"""Property-based tests: request conservation over random topologies.

For arbitrary small call trees mixing all three communication modes,
every submitted request's tree must complete, end-to-end latency must be
at least the critical-path work, and telemetry counters must balance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, RandomStreams

MODES = [CallMode.RPC, CallMode.EVENT, CallMode.MQ]


@st.composite
def call_trees(draw):
    """A random tree over services s0..s3 with depth <= 3."""
    n_services = draw(st.integers(2, 4))

    def subtree(depth, service_pool):
        service = draw(st.sampled_from(service_pool))
        children = ()
        if depth < 2 and draw(st.booleans()):
            remaining = [s for s in service_pool if s != service]
            if remaining:
                children = tuple(
                    subtree(depth + 1, remaining)
                    for _ in range(draw(st.integers(1, 2)))
                )
        return Call(
            service,
            draw(st.sampled_from(MODES)),
            children,
            repeat=draw(st.integers(1, 2)),
        )

    pool = [f"s{i}" for i in range(n_services)]
    root = Call(pool[0], CallMode.RPC, subtree(1, pool[1:]).children or (), repeat=1)
    # Root must have at least itself; rebuild with a guaranteed child mix.
    child = subtree(1, pool[1:])
    root = Call(pool[0], CallMode.RPC, (child,))
    return n_services, root


@given(data=call_trees(), n_requests=st.integers(5, 25))
@settings(max_examples=25, deadline=None)
def test_every_request_completes(data, n_requests):
    n_services, tree = data
    services = tuple(
        ServiceSpec(
            f"s{i}",
            cpus_per_replica=1,
            handlers={"r": Constant(0.002)},
            threads_per_cpu=4,
            startup_delay_s=1.0,
        )
        for i in range(n_services)
    )
    spec = AppSpec(
        "prop",
        services=services,
        request_classes=(RequestClass("r", tree, SlaSpec(99, 30.0)),),
    )
    env = Environment()
    app = Application(
        spec, env=env, cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(0), initial_replicas=1,
        utilization_sample_interval_s=0,
    )
    env.run(until=5)
    requests = []
    dones = []
    for _ in range(n_requests):
        request, done = app.submit("r")
        requests.append(request)
        dones.append(done)
        env.run(until=env.now + 0.01)
    env.run(until=env.now + 60)

    # 1. Conservation: every tree completed.
    assert all(d.processed for d in dones)
    # 2. Latency lower bound: at least the work along the critical path
    #    (one handler execution of 2 ms).
    for request in requests:
        assert request.latency >= 0.002 - 1e-9
    # 3. Telemetry balance: client counters match submissions and every
    #    access produced a service-level request record.
    total_clients = app.hub.counter_total(
        "client_requests_total", 0, env.now, {"request": "r"}
    )
    assert total_clients == n_requests
    access = spec.request_classes[0].access_counts()
    for service, count in access.items():
        recorded = app.hub.counter_total(
            "requests_total", 0, env.now, {"service": service, "request": "r"}
        )
        assert recorded == count * n_requests
    # 4. Latency samples: one end-to-end record per request.
    dist = app.hub.latency_distribution("request_latency", 0, env.now, {"request": "r"})
    assert dist.count == n_requests
