"""Integration tests for the microservice runtime and topology layer."""

import pytest

from repro.apps.topology import Application, AppSpec, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.errors import TopologyError
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, Exponential, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def two_tier_spec(mode=CallMode.RPC, work_front=0.002, work_back=0.005):
    """front -> back via the given mode, one request class 'req'."""
    return AppSpec(
        name="two-tier",
        services=(
            ServiceSpec(
                "front", cpus_per_replica=2, handlers={"req": Constant(work_front)}
            ),
            ServiceSpec(
                "back", cpus_per_replica=2, handlers={"req": Constant(work_back)}
            ),
        ),
        request_classes=(
            RequestClass(
                name="req",
                tree=Call("front", CallMode.RPC, (Call("back", mode),)),
                sla=SlaSpec(percentile=99.0, target_s=0.5),
            ),
        ),
    )


def make_app(spec, seed=0, replicas=1, **kwargs):
    env = Environment()
    cluster = Cluster(env, nodes=[Node("n0", 64, 128), Node("n1", 64, 128)])
    app = Application(
        spec,
        env=env,
        cluster=cluster,
        streams=RandomStreams(seed=seed),
        initial_replicas=replicas,
        **kwargs,
    )
    env.run(until=10)  # let initial replicas start
    return app


def test_single_request_completes():
    app = make_app(two_tier_spec())
    request, done = app.submit("req")
    app.env.run(until=done)
    assert request.completion_time is not None
    # ~2ms + 5ms work + network hops
    assert 0.007 <= request.latency < 0.05


def test_latency_includes_both_tiers():
    app = make_app(two_tier_spec(work_front=0.010, work_back=0.020))
    request, done = app.submit("req")
    app.env.run(until=done)
    assert request.latency >= 0.030


def test_mq_edge_completes_and_counts():
    app = make_app(two_tier_spec(mode=CallMode.MQ))
    request, done = app.submit("req")
    app.env.run(until=done)
    assert request.completion_time is not None
    back = app.services["back"]
    assert back.queue.published == 1
    assert back.queue.consumed == 1


def test_request_latency_metric_recorded():
    app = make_app(two_tier_spec())
    _, done = app.submit("req")
    app.env.run(until=done)
    app.env.run(until=60)
    dist = app.hub.latency_distribution("request_latency", 0, 60, {"request": "req"})
    assert dist.count == 1


def test_sla_violation_counted():
    spec = AppSpec(
        name="slow",
        services=(
            ServiceSpec("svc", cpus_per_replica=1, handlers={"req": Constant(0.2)}),
        ),
        request_classes=(
            RequestClass(
                "req", Call("svc"), SlaSpec(percentile=99.0, target_s=0.05)
            ),
        ),
    )
    app = make_app(spec)
    _, done = app.submit("req")
    app.env.run(until=done)
    app.env.run(until=60)
    assert app.hub.counter_total("sla_violations_total", 0, 60, {"request": "req"}) == 1
    assert app.sla_violation_rate(0, 60) == 1.0


def test_unknown_class_rejected():
    app = make_app(two_tier_spec())
    with pytest.raises(TopologyError):
        app.submit("nope")


def test_spec_validates_handlers():
    with pytest.raises(TopologyError):
        AppSpec(
            name="bad",
            services=(ServiceSpec("svc", cpus_per_replica=1, handlers={}),),
            request_classes=(
                RequestClass(
                    "req", Call("svc"), SlaSpec(percentile=99, target_s=1)
                ),
            ),
        )


def test_spec_validates_services():
    with pytest.raises(TopologyError):
        AppSpec(
            name="bad",
            services=(
                ServiceSpec("svc", cpus_per_replica=1, handlers={"req": Constant(1)}),
            ),
            request_classes=(
                RequestClass(
                    "req", Call("ghost"), SlaSpec(percentile=99, target_s=1)
                ),
            ),
        )


def test_many_requests_under_load():
    spec = two_tier_spec(work_back=0.004)
    app = make_app(spec, replicas=2)
    gen = LoadGenerator(
        app,
        pattern=ConstantLoad(100.0),
        mix=RequestMix({"req": 1.0}),
        streams=RandomStreams(seed=1),
        stop_at_s=70.0,
    )
    gen.start()
    app.env.run(until=120)
    dist = app.hub.latency_distribution("request_latency", 0, 120, {"request": "req"})
    assert dist.count > 4000
    assert dist.percentile(50) < 0.05
    # All generated requests completed.
    assert dist.count == sum(gen.generated.values())


def test_scaling_up_reduces_latency_under_load():
    def run(replicas):
        spec = two_tier_spec(work_back=0.018)
        app = make_app(spec, replicas={"front": 4, "back": replicas}, seed=3)
        gen = LoadGenerator(
            app,
            pattern=ConstantLoad(100.0),
            mix=RequestMix({"req": 1.0}),
            streams=RandomStreams(seed=4),
            stop_at_s=60.0,
        )
        gen.start()
        app.env.run(until=100)
        return app.hub.latency_distribution(
            "request_latency", 20, 100, {"request": "req"}
        ).percentile(99)

    # back needs ~1.8 cores at 100 rps; 1 replica (2 cpus) is near
    # saturation, 4 replicas are comfortable.
    assert run(4) < run(1)


def test_priority_requests_served_first():
    spec = AppSpec(
        name="prio",
        services=(
            ServiceSpec(
                "svc",
                cpus_per_replica=1,
                handlers={"high": Exponential(0.02), "low": Exponential(0.02)},
            ),
        ),
        request_classes=(
            RequestClass(
                "high", Call("svc", CallMode.MQ), SlaSpec(99, 10.0), priority=0
            ),
            RequestClass(
                "low", Call("svc", CallMode.MQ), SlaSpec(50, 10.0), priority=1
            ),
        ),
    )
    app = make_app(spec, replicas=1)
    gen = LoadGenerator(
        app,
        pattern=ConstantLoad(60.0),  # oversubscribed: ~1.2 cores of work
        mix=RequestMix({"high": 0.5, "low": 0.5}),
        streams=RandomStreams(seed=5),
        stop_at_s=40.0,
    )
    gen.start()
    app.env.run(until=300)
    high = app.hub.latency_distribution("request_latency", 0, 300, {"request": "high"})
    low = app.hub.latency_distribution("request_latency", 0, 300, {"request": "low"})
    assert high.count > 100 and low.count > 100
    assert high.percentile(90) < low.percentile(90)


def test_scale_down_drains_gracefully():
    app = make_app(two_tier_spec(), replicas=3)
    gen = LoadGenerator(
        app,
        pattern=ConstantLoad(50.0),
        mix=RequestMix({"req": 1.0}),
        streams=RandomStreams(seed=6),
        stop_at_s=30.0,
    )
    gen.start()
    app.env.run(until=15)
    app.scale("back", 1)
    app.env.run(until=60)
    assert app.replicas("back") == 1
    assert app.allocated_cpus("back") == 2
    dist = app.hub.latency_distribution("request_latency", 0, 60, {"request": "req"})
    assert dist.count == sum(gen.generated.values())  # nothing lost


def test_utilization_gauge_reflects_load():
    spec = two_tier_spec(work_back=0.015)
    app = make_app(spec, replicas=1)
    gen = LoadGenerator(
        app,
        pattern=ConstantLoad(80.0),  # back: 80 * 15ms = 1.2 busy cores of 2
        mix=RequestMix({"req": 1.0}),
        streams=RandomStreams(seed=7),
        stop_at_s=120.0,
    )
    gen.start()
    app.env.run(until=120)
    util = app.hub.gauge_mean("cpu_utilization", 30, 120, {"service": "back"})
    assert 0.35 <= util <= 0.85


def test_speed_factor_throttling_increases_latency():
    app = make_app(two_tier_spec(work_back=0.01), replicas=2)
    gen = LoadGenerator(
        app,
        pattern=ConstantLoad(50.0),
        mix=RequestMix({"req": 1.0}),
        streams=RandomStreams(seed=8),
        stop_at_s=200.0,
    )
    gen.start()
    app.env.run(until=100)
    before = app.hub.latency_distribution(
        "request_latency", 20, 100, {"request": "req"}
    ).percentile(99)
    app.services["back"].set_speed_factor(0.2)
    app.env.run(until=200)
    after = app.hub.latency_distribution(
        "request_latency", 120, 200, {"request": "req"}
    ).percentile(99)
    assert after > before * 2


def test_mean_cpu_allocation_accounting():
    app = make_app(two_tier_spec(), replicas=2)
    app.env.run(until=100)
    # 2 replicas x 2 cpus x 2 services
    assert app.mean_cpu_allocation(20, 100) == pytest.approx(8.0, abs=0.5)
