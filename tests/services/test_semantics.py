"""Semantic tests for thread/CPU pools and call-mode mechanics."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, RandomStreams


def build(spec, seed=0, replicas=1):
    env = Environment()
    app = Application(
        spec, env=env, cluster=Cluster(env, nodes=[Node("n", 64, 128)]),
        streams=RandomStreams(seed), initial_replicas=replicas,
    )
    env.run(until=10)
    return app


def two_tier(mode, front_threads=2, back_work=0.1):
    return AppSpec(
        "semantics",
        services=(
            ServiceSpec(
                "front",
                cpus_per_replica=1,
                handlers={"r": Constant(0.001)},
                threads_per_cpu=front_threads,
                daemon_pool_factor=2.0,
            ),
            ServiceSpec(
                "back", cpus_per_replica=1, handlers={"r": Constant(back_work)},
                threads_per_cpu=8,
            ),
        ),
        request_classes=(
            RequestClass("r", Call("front", CallMode.RPC, (Call("back", mode),)),
                         SlaSpec(99, 60.0)),
        ),
    )


def test_nested_rpc_holds_thread_during_downstream_wait():
    """With 2 front threads and a 100ms backend, at most 2 requests are in
    flight at the front even though its own work is 1ms."""
    app = build(two_tier(CallMode.RPC, front_threads=2))
    env = app.env
    for _ in range(6):
        app.submit("r")
    env.run(until=10.05)  # mid-flight
    front = app.services["front"]
    replica = front._running[0]
    assert replica.threads.in_use == 2
    assert replica.threads.queue_len == 4
    # The front's CPU is idle while its threads block downstream.
    assert replica.cpu.in_use == 0


def test_mq_publish_releases_thread_immediately():
    """MQ edges never hold the producer's thread on the consumer."""
    app = build(two_tier(CallMode.MQ, front_threads=2))
    env = app.env
    dones = [app.submit("r")[1] for _ in range(6)]
    env.run(until=10.1)
    front = app.services["front"]
    replica = front._running[0]
    # All six requests passed through the front already (1 ms work each).
    assert replica.threads.in_use == 0
    back = app.services["back"]
    assert back.queue.published == 6
    env.run(until=12)
    assert all(d.processed for d in dones)


def test_event_rpc_daemon_pool_bounds_dispatch():
    """Event-driven dispatch blocks once the daemon pool is exhausted."""
    app = build(two_tier(CallMode.EVENT, front_threads=8))
    env = app.env
    for _ in range(10):
        app.submit("r")
    env.run(until=10.05)
    front = app.services["front"]
    replica = front._running[0]
    # Daemon pool = 1 cpu x 8 threads x 2.0 = 16 daemons: all 10 in-flight
    # requests hold daemons (waiting on the 100 ms backend).
    assert replica.daemons.in_use == 10
    env.run(until=15)
    assert replica.daemons.in_use == 0


def test_cpu_contention_serialises_processing():
    """One core, three 100ms jobs arriving together: finish ~100/200/300ms."""
    spec = AppSpec(
        "cpu",
        services=(
            ServiceSpec("svc", cpus_per_replica=1, handlers={"r": Constant(0.1)},
                        threads_per_cpu=8),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 10)),),
    )
    app = build(spec)
    env = app.env
    requests = [app.submit("r")[0] for _ in range(3)]
    env.run(until=15)
    latencies = sorted(r.latency for r in requests)
    assert latencies[0] == pytest.approx(0.1, abs=0.02)
    assert latencies[1] == pytest.approx(0.2, abs=0.02)
    assert latencies[2] == pytest.approx(0.3, abs=0.02)


def test_service_latency_excludes_downstream_wait():
    """The front's recorded service latency is ~its own work, not the
    backend's 100 ms."""
    app = build(two_tier(CallMode.RPC))
    env = app.env
    _, done = app.submit("r")
    env.run(until=done)
    env.run(until=60)
    front_lat = app.hub.latency_distribution(
        "service_latency", 0, 60, {"service": "front", "request": "r"}
    )
    assert front_lat.max < 0.02  # 1ms work + network legs
    e2e = app.hub.latency_distribution("request_latency", 0, 60, {"request": "r"})
    assert e2e.min > 0.1  # but the request did take the backend's 100ms


def test_repeat_calls_execute_sequentially():
    spec = AppSpec(
        "rep",
        services=(
            ServiceSpec("a", cpus_per_replica=1, handlers={"r": Constant(0.001)},
                        threads_per_cpu=8),
            ServiceSpec("b", cpus_per_replica=4, handlers={"r": Constant(0.05)},
                        threads_per_cpu=8),
        ),
        request_classes=(
            RequestClass("r", Call("a", children=(Call("b", repeat=4),)),
                         SlaSpec(99, 10)),
        ),
    )
    app = build(spec)
    request, done = app.submit("r")
    app.env.run(until=done)
    # Four sequential 50 ms calls despite b having 4 idle cores.
    assert request.latency >= 0.2


def test_all_submitted_requests_complete_under_churn():
    """Conservation: nothing is lost across scale up/down churn."""
    spec = two_tier(CallMode.RPC, front_threads=8, back_work=0.01)
    app = build(spec, replicas=2)
    env = app.env
    submitted = []
    for k in range(300):
        submitted.append(app.submit("r")[1])
        env.run(until=env.now + 0.05)
        if k == 100:
            app.scale("back", 4)
        if k == 200:
            app.scale("back", 1)
    env.run(until=env.now + 30)
    assert all(d.processed for d in submitted)


def test_set_handler_swaps_work_distribution():
    """§VII-G hook: swapping a handler changes processing cost in place."""
    spec = AppSpec(
        "swap",
        services=(
            ServiceSpec("svc", cpus_per_replica=1, handlers={"r": Constant(0.2)}),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 10)),),
    )
    app = build(spec)
    request, done = app.submit("r")
    app.env.run(until=done)
    assert request.latency >= 0.2
    app.services["svc"].set_handler("r", Constant(0.01))
    request2, done2 = app.submit("r")
    app.env.run(until=done2)
    assert request2.latency < 0.05
