"""Engine determinism regression: the contract ursalint exists to protect.

Two runs of the social-network application with the same seed must
produce *byte-identical* event traces -- every event fires at the same
simulated time, with the same scheduling sequence number, in the same
order.  A different seed must diverge.  This is the executable form of
the engine's promise ("runs with the same seed are exactly
reproducible") that every benchmark shape target and t-test relies on.
"""

from repro.apps.social_network import build_social_network_spec
from repro.apps.topology import Application
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.sim.engine import Environment, SimulationError
from repro.sim.random import RandomStreams
from repro.sim.resources import Resource
from repro.sim.trace import EventTraceRecorder
from repro.workload.defaults import social_network_mix
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import ConstantLoad

import pytest


def _run_social_network(seed: int, until: float = 20.0) -> bytes:
    recorder = EventTraceRecorder()
    env = Environment(trace=recorder)
    cluster = Cluster(env, nodes=[Node(f"n{i}", 96, 256) for i in range(4)])
    app = Application(
        build_social_network_spec(),
        env=env,
        cluster=cluster,
        streams=RandomStreams(seed),
        initial_replicas=1,
    )
    generator = LoadGenerator(
        app,
        pattern=ConstantLoad(20.0),
        mix=social_network_mix(),
        streams=RandomStreams(seed + 7),
    )
    generator.start()
    env.run(until=until)
    assert sum(generator.generated.values()) > 0, "load generator produced nothing"
    return recorder.as_bytes()


def test_same_seed_is_byte_identical():
    assert _run_social_network(seed=42) == _run_social_network(seed=42)


def test_different_seed_diverges():
    assert _run_social_network(seed=42) != _run_social_network(seed=43)


def test_release_without_acquire_raises():
    env = Environment()
    resource = Resource(env, capacity=2)
    with pytest.raises(SimulationError, match="without matching acquire"):
        resource.release()


def test_release_more_than_acquired_raises():
    env = Environment()
    resource = Resource(env, capacity=2)

    def proc(env, resource):
        yield resource.acquire()
        try:
            yield env.timeout(1.0)
        finally:
            resource.release()

    env.process(proc(env, resource))
    env.run()
    with pytest.raises(SimulationError, match="without matching acquire"):
        resource.release()
