"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(5)
        times.append(env.now)
        yield env.timeout(2.5)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["hello"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_visible_to_waiter():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(3)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(3.0, 42)]


def test_run_until_event_returns_value():
    env = Environment()

    def child(env):
        yield env.timeout(3)
        return "ok"

    proc = env.process(child(env))
    assert env.run(until=proc) == "ok"
    assert env.now == 3.0


def test_event_succeed_wakes_waiter():
    env = Environment()
    trigger = env.event()
    woken = []

    def waiter(env):
        value = yield trigger
        woken.append((env.now, value))

    def firer(env):
        yield env.timeout(7)
        trigger.succeed("payload")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert woken == [(7.0, "payload")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_failed_event_raises_in_waiter():
    env = Environment()
    trigger = env.event()
    caught = []

    def waiter(env):
        try:
            yield trigger
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1)
        trigger.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_propagates_to_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(10)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [15.0]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc(env):
        a = env.timeout(5, value="a")
        b = env.timeout(10, value="b")
        fired = yield AnyOf(env, [a, b])
        log.append((env.now, sorted(fired.values())))

    env.process(proc(env))
    env.run()
    assert log == [(5.0, ["a"])]


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc(env):
        a = env.timeout(5, value="a")
        b = env.timeout(10, value="b")
        fired = yield AllOf(env, [a, b])
        log.append((env.now, sorted(fired.values())))

    env.process(proc(env))
    env.run()
    assert log == [(10.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    log = []

    def proc(env):
        yield AllOf(env, [])
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_is_alive_lifecycle():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_deterministic_many_processes():
    """Two identical runs produce identical event orderings."""

    def run_once():
        env = Environment()
        log = []

        def proc(env, name, period):
            while env.now < 50:
                yield env.timeout(period)
                log.append((env.now, name))

        for i, period in enumerate([3, 5, 7, 3]):
            env.process(proc(env, f"p{i}", period))
        env.run(until=60)
        return log

    assert run_once() == run_once()


def test_condition_propagates_failure():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1)
        raise ValueError("child failed")

    def waiter(env):
        p1 = env.process(failer(env))
        p2 = env.timeout(10)
        try:
            yield AllOf(env, [p1, p2])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()
    assert caught == ["child failed"]


def test_any_of_with_already_processed_event():
    env = Environment()
    log = []

    def proc(env):
        done = env.timeout(1)
        yield env.timeout(2)  # let `done` fire and process first
        fired = yield AnyOf(env, [done, env.timeout(50)])
        log.append(env.now)

    env.process(proc(env))
    env.run(until=10)
    # `done` already processed: AnyOf completes immediately at t=2.
    assert log == [2.0]


def test_run_until_event_that_never_fires():
    env = Environment()
    stop = env.event()  # nothing will ever trigger this

    def proc(env):
        yield env.timeout(5)

    env.process(proc(env))
    with pytest.raises(SimulationError, match="never fired"):
        env.run(until=stop)
    # The schedule fully drained before the error was raised.
    assert env.now == 5.0


def test_run_until_event_with_empty_schedule():
    env = Environment()
    with pytest.raises(SimulationError, match="never fired"):
        env.run(until=env.event())


def test_run_until_past_time_leaves_clock_untouched():
    env = Environment()
    env.run(until=7)
    with pytest.raises(SimulationError, match="in the past"):
        env.run(until=3)
    assert env.now == 7.0


def test_run_until_unfired_event_with_subclassed_step():
    # The never-fires check must hold on the non-inlined drain loop used
    # by step()-overriding subclasses (e.g. trace recorders) too.
    class CountingEnvironment(Environment):
        steps = 0

        def step(self):
            type(self).steps += 1
            super().step()

    env = CountingEnvironment()

    def proc(env):
        yield env.timeout(1)
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError, match="never fired"):
        env.run(until=env.event())
    assert CountingEnvironment.steps > 0
