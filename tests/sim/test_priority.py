"""Tests for priority-aware resource granting."""

from repro.sim import Environment, Resource


def test_lower_priority_value_granted_first():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        yield res.acquire()
        yield env.timeout(10)
        res.release()

    def waiter(env, name, priority, start):
        yield env.timeout(start)
        yield res.acquire(priority=priority)
        order.append(name)
        res.release()

    env.process(holder(env))
    env.process(waiter(env, "low", 5, 1.0))
    env.process(waiter(env, "high", 0, 2.0))  # arrives later, jumps queue
    env.run()
    assert order == ["high", "low"]


def test_fifo_within_priority_level():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        yield res.acquire()
        yield env.timeout(5)
        res.release()

    def waiter(env, name, start):
        yield env.timeout(start)
        yield res.acquire(priority=1)
        order.append(name)
        res.release()

    env.process(holder(env))
    for i, name in enumerate("abc"):
        env.process(waiter(env, name, 1.0 + i * 0.1))
    env.run()
    assert order == ["a", "b", "c"]


def test_cancelled_request_skipped():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder(env):
        yield res.acquire()
        yield env.timeout(5)
        res.release()

    env.process(holder(env))
    env.run(until=1)
    doomed = res.acquire(priority=0)
    doomed.cancel()

    def waiter(env):
        yield res.acquire(priority=1)
        granted.append("waiter")
        res.release()

    env.process(waiter(env))
    env.run()
    assert granted == ["waiter"]
    assert res.queue_len == 0


def test_queue_len_excludes_withdrawn():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        yield res.acquire()
        yield env.timeout(100)
        res.release()

    env.process(holder(env))
    env.run(until=1)
    a = res.acquire()
    b = res.acquire()
    assert res.queue_len == 2
    a.cancel()
    assert res.queue_len == 1
    b.cancel()
    assert res.queue_len == 0
