"""Queue equivalence: heap, calendar, and auto pop identical orders.

The engine promises that the future-event structure is a pure
constant-factor choice -- scheduling order, and therefore every
simulation result, is byte-identical across ``queue="heap"``,
``queue="calendar"``, and ``queue="auto"`` (docs/performance.md).  This
file is the executable form of that promise: randomized workloads mixing
zero-delay triggers, far-future timeouts, priority interrupts, resource
contention, and abandoned (interrupt-detached) timeouts are run through
all three queue kinds, and both the full event trace and the rolling
run digest must match entry for entry.

The auto runs lower the migration thresholds so each run provably
crosses heap -> calendar -> heap mid-simulation; equivalence is checked
*across* the flips, which is exactly where an ordering bug would hide
(``_bulk_load`` or the drain handoff dropping or reordering entries).
"""

import pytest

from repro.sim.engine import Environment, Interrupt
from repro.sim.random import RandomStreams
from repro.sim.resources import Resource
from repro.sim.trace import EventTraceRecorder, RunDigest

#: Lowered auto-migration thresholds: small enough that the randomized
#: workload's pending population (a few hundred events) crosses them,
#: preserving the real upgrade/downgrade ratio.
_TEST_UPGRADE = 64
_TEST_DOWNGRADE = 16


def _random_workload(env: Environment, seed: int) -> None:
    """A randomized mix that exercises every scheduling path.

    All randomness comes from named :class:`RandomStreams` streams keyed
    only by the seed, never by queue kind, so two environments given the
    same seed issue the identical schedule.
    """
    streams = RandomStreams(seed)
    resource = Resource(env, capacity=3)

    def burst(env, r):
        # Mixed horizons: zero-delay (now bucket), near, and far future
        # (spreads the calendar across many buckets).
        for _ in range(30):
            roll = r.random()
            if roll < 0.25:
                delay = 0.0
            elif roll < 0.75:
                delay = r.random() * 0.5
            else:
                delay = r.random() * 40.0
            yield env.timeout(delay)

    def contender(env, r):
        for _ in range(12):
            yield resource.acquire(priority=int(r.integers(3)))
            try:
                yield env.timeout(r.random() * 0.3)
            finally:
                resource.release()

    def sleeper(env):
        # Interrupt target: its pending timeouts get detached mid-flight,
        # leaving callback-less entries to drain from the queue.
        while True:
            try:
                yield env.timeout(5.0)
            except Interrupt:
                pass

    def interrupter(env, victims, r):
        for _ in range(8):
            yield env.timeout(0.1 + r.random() * 3.0)
            victim = victims[int(r.integers(len(victims)))]
            if victim.is_alive:
                victim.interrupt("poke")

    victims = [env.process(sleeper(env)) for _ in range(3)]
    for i in range(6):
        env.process(burst(env, streams.stream(f"burst-{i}")))
    for i in range(4):
        env.process(contender(env, streams.stream(f"contender-{i}")))
    env.process(interrupter(env, victims, streams.stream("interrupter")))
    # Standing population of unconsumed far-future timeouts: pushes the
    # pending set past the (lowered) upgrade threshold so auto migrates,
    # then lets it drain back below the downgrade threshold.
    standing = streams.stream("standing")
    for _ in range(3 * _TEST_UPGRADE):
        env.timeout(standing.random() * 50.0)


def _run(queue: str, seed: int) -> tuple[bytes, str, bool]:
    """One traced run; returns (trace bytes, digest, saw calendar mode)."""
    recorder = EventTraceRecorder()
    digest = RunDigest()

    def both(when, priority, seq, event):
        recorder(when, priority, seq, event)
        digest(when, priority, seq, event)

    env = Environment(trace=both, queue=queue)
    if queue == "auto":
        env._cal_up = _TEST_UPGRADE
        env._cal_down = _TEST_DOWNGRADE
    saw_calendar = False

    def monitor(env):
        nonlocal saw_calendar
        while True:
            yield env.timeout(1.0)
            if env._cal is not None:
                saw_calendar = True

    env.process(monitor(env))
    _random_workload(env, seed)
    env.run(until=60.0)
    return recorder.as_bytes(), digest.hexdigest(), saw_calendar


@pytest.mark.parametrize("seed", [0, 7, 1234, 99991])
def test_all_queue_kinds_pop_identically(seed):
    heap_trace, heap_digest, _ = _run("heap", seed)
    cal_trace, cal_digest, _ = _run("calendar", seed)
    auto_trace, auto_digest, auto_migrated = _run("auto", seed)
    assert heap_trace == cal_trace
    assert heap_trace == auto_trace
    assert heap_digest == cal_digest == auto_digest
    # The auto run must actually have been in calendar mode at some
    # point, or this test silently degrades to heap-vs-heap.
    assert auto_migrated


def test_auto_migrates_and_returns():
    """With lowered thresholds the auto queue flips up and back down."""
    env = Environment(queue="auto")
    env._cal_up = _TEST_UPGRADE
    env._cal_down = _TEST_DOWNGRADE
    states: list[bool] = []

    def monitor(env):
        while True:
            yield env.timeout(0.5)
            states.append(env._cal is not None)

    env.process(monitor(env))
    _random_workload(env, seed=5)
    env.run(until=60.0)
    assert any(states), "never migrated to the calendar queue"
    assert not states[-1], "never downgraded back to the heap"


def test_seeded_trace_is_stable_per_kind():
    """Same seed, same kind -> byte-identical trace (no hidden state)."""
    for queue in ("heap", "calendar", "auto"):
        first, first_digest, _ = _run(queue, seed=21)
        again, again_digest, _ = _run(queue, seed=21)
        assert first == again
        assert first_digest == again_digest
