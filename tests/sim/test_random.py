"""Unit and property tests for random streams and distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import (
    Constant,
    Exponential,
    Hyperexponential,
    LogNormal,
    Pareto,
    RandomStreams,
    Uniform,
)


def test_same_seed_same_stream():
    a = RandomStreams(seed=7).stream("svc")
    b = RandomStreams(seed=7).stream("svc")
    assert a.random() == b.random()


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("svc-a").random(10)
    b = streams.stream("svc-b").random(10)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_fork_changes_streams():
    base = RandomStreams(seed=3)
    fork = base.fork(1)
    assert base.stream("s").random() != fork.stream("s").random()


@pytest.mark.parametrize(
    "dist",
    [
        Constant(2.0),
        Exponential(2.0),
        LogNormal(2.0, cv=0.5),
        Pareto(2.0, alpha=2.5),
        Uniform(1.0, 3.0),
        Hyperexponential(1.0, 11.0, p_slow=0.1),
    ],
)
def test_distribution_mean_close(dist):
    rng = np.random.default_rng(0)
    samples = np.array([dist.sample(rng) for _ in range(20000)])
    assert samples.min() >= 0
    assert samples.mean() == pytest.approx(dist.mean, rel=0.15)


@pytest.mark.parametrize(
    "dist",
    [
        Constant(2.0),
        Exponential(2.0),
        LogNormal(2.0),
        Pareto(2.0),
        Uniform(1.0, 3.0),
        Hyperexponential(1.0, 11.0),
    ],
)
def test_scaled_scales_mean(dist):
    assert dist.scaled(0.5).mean == pytest.approx(dist.mean * 0.5)


def test_lognormal_cv():
    dist = LogNormal(10.0, cv=1.0)
    rng = np.random.default_rng(1)
    samples = np.array([dist.sample(rng) for _ in range(50000)])
    cv = samples.std() / samples.mean()
    assert cv == pytest.approx(1.0, rel=0.1)


@pytest.mark.parametrize(
    "bad",
    [
        lambda: Exponential(0),
        lambda: Exponential(-1),
        lambda: LogNormal(1.0, cv=0),
        lambda: LogNormal(-1.0),
        lambda: Pareto(1.0, alpha=1.0),
        lambda: Uniform(3.0, 1.0),
        lambda: Hyperexponential(1.0, 2.0, p_slow=1.5),
        lambda: Constant(-0.1),
    ],
)
def test_invalid_parameters_rejected(bad):
    with pytest.raises(ValueError):
        bad()


@given(mean=st.floats(0.01, 1e4), cv=st.floats(0.05, 3.0))
@settings(max_examples=50)
def test_lognormal_samples_positive(mean, cv):
    dist = LogNormal(mean, cv=cv)
    rng = np.random.default_rng(0)
    for _ in range(20):
        assert dist.sample(rng) > 0


@given(seed=st.integers(0, 2**31), name=st.text(min_size=1, max_size=20))
@settings(max_examples=30)
def test_streams_reproducible_property(seed, name):
    a = RandomStreams(seed=seed).stream(name).random(5)
    b = RandomStreams(seed=seed).stream(name).random(5)
    assert np.array_equal(a, b)
