"""Unit tests for simulation resources (thread pools, stores)."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def worker(env, name):
        yield res.acquire()
        granted.append((env.now, name))
        yield env.timeout(10)
        res.release()

    for name in "abc":
        env.process(worker(env, name))
    env.run()
    # a and b start immediately; c waits for a release at t=10.
    assert granted == [(0.0, "a"), (0.0, "b"), (10.0, "c")]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, name, start):
        yield env.timeout(start)
        yield res.acquire()
        order.append(name)
        yield env.timeout(5)
        res.release()

    for i, name in enumerate("abcd"):
        env.process(worker(env, name, start=i * 0.1))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        yield res.acquire()
        yield env.timeout(10)
        res.release()

    def waiter(env):
        yield env.timeout(1)
        yield res.acquire()
        res.release()

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=5)
    assert res.in_use == 1
    assert res.queue_len == 1
    env.run()
    assert res.in_use == 0
    assert res.queue_len == 0


def test_release_without_acquire_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resize_grow_wakes_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def worker(env, name):
        yield res.acquire()
        granted.append((env.now, name))
        yield env.timeout(100)
        res.release()

    def grower(env):
        yield env.timeout(5)
        res.resize(3)

    for name in "abc":
        env.process(worker(env, name))
    env.process(grower(env))
    env.run(until=50)
    assert granted == [(0.0, "a"), (5.0, "b"), (5.0, "c")]


def test_resize_shrink_does_not_preempt():
    env = Environment()
    res = Resource(env, capacity=2)

    def worker(env):
        yield res.acquire()
        yield env.timeout(10)
        res.release()

    env.process(worker(env))
    env.process(worker(env))
    env.run(until=1)
    res.resize(1)
    assert res.in_use == 2  # existing holders keep their slots
    env.run()
    assert res.in_use == 0


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(9)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(9.0, "x")]


def test_bounded_store_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer(env):
        yield store.put("a")
        events.append(("put-a", env.now))
        yield store.put("b")
        events.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        events.append((f"got-{item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events  # blocked until consumer freed a slot


def test_try_put_respects_capacity():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert len(store) == 2


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        yield store.put((2, 0, "low"))
        yield store.put((1, 1, "high"))
        yield store.put((1, 2, "high2"))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            got.append(item[2])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["high", "high2", "low"]


def test_priority_store_waiting_getter_gets_first_item():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append(item)

    def producer(env):
        yield env.timeout(1)
        yield store.put((5, 0, "only"))

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(5, 0, "only")]


def test_store_len_and_items_view():
    env = Environment()
    store = Store(env)
    store.try_put("a")
    store.try_put("b")
    assert len(store) == 2
    assert store.items == ["a", "b"]
