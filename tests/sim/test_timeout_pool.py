"""Timeout freelist: reuse accounting, refcount guard, corruption checks.

The engine recycles processed :class:`Timeout` objects through a
per-environment freelist (``engine.py``).  These tests pin the safety
contract around that optimization:

* recycling actually happens (the allocation probe's reuse counters are
  the perf gate; here we check the mechanism, not the rate);
* a timeout the simulation still *holds* is never recycled -- the
  refcount guard keeps live handles out of the pool;
* a stale handle that mutates a pooled timeout is detected loudly at
  reuse time instead of corrupting the schedule;
* the generation counter distinguishes reuses of the same object.
"""

import pytest

from repro.sim.engine import Environment, SimulationError, Timeout


def _spin(env: Environment, rounds: int) -> None:
    def looper(env):
        for _ in range(rounds):
            yield env.timeout(0.1)

    env.process(looper(env))
    env.run()


def test_pool_reuses_processed_timeouts():
    env = Environment()
    _spin(env, rounds=50)
    stats = env.timeout_pool_stats()
    assert stats["reuses"] > 0
    # Steady-state: one looper needs one in-flight timeout, so after the
    # first allocation every subsequent round is served from the pool.
    assert stats["allocs"] <= 2
    assert stats["allocs"] + stats["reuses"] == 50


def test_pool_stats_shape():
    env = Environment()
    stats = env.timeout_pool_stats()
    assert stats == {"allocs": 0, "reuses": 0, "pooled": 0}


def test_held_timeout_is_not_recycled():
    """A handle the test still references must stay out of the pool."""
    env = Environment()
    held: list[Timeout] = []

    def holder(env):
        t = env.timeout(0.1)
        held.append(t)  # external reference outlives processing
        yield t
        yield env.timeout(0.1)

    env.process(holder(env))
    env.run()
    assert held[0].processed
    # The held timeout was not pooled, so a fresh timeout is either a
    # new allocation or a recycle of some *other* object.
    fresh = env.timeout(1.0)
    assert fresh is not held[0]


def test_generation_counter_increments_on_reuse():
    env = Environment()
    _spin(env, rounds=10)
    assert env.timeout_pool_stats()["pooled"] >= 1
    recycled = env.timeout(0.5)
    assert recycled._gen >= 1


def test_stale_mutation_is_detected_at_reuse():
    """Corrupting a pooled timeout raises at the next reuse."""
    env = Environment()
    _spin(env, rounds=10)
    assert env.timeout_pool_stats()["pooled"] >= 1
    # Simulate a buggy caller mutating a recycled handle it should have
    # forgotten: resurrect the pooled object's callbacks list.
    pooled = env._pool[-1]
    pooled.callbacks.append(lambda event: None)
    with pytest.raises(SimulationError, match="freelist corrupted"):
        env.timeout(0.5)


def test_negative_delay_rejected_on_both_paths():
    env = Environment()
    with pytest.raises(SimulationError, match="negative timeout delay"):
        env.timeout(-1.0)  # fresh-allocation path
    _spin(env, rounds=10)
    assert env.timeout_pool_stats()["pooled"] >= 1
    with pytest.raises(SimulationError, match="negative timeout delay"):
        env.timeout(-1.0)  # pool-reuse path


def test_recycled_runs_match_fresh_runs():
    """Pooling is invisible to results: values and times are unchanged."""
    env = Environment()
    observed: list[tuple[float, object]] = []

    def worker(env):
        for i in range(30):
            value = yield env.timeout(0.25, value=i)
            observed.append((env.now, value))

    env.process(worker(env))
    env.run()
    assert observed == [(0.25 * (i + 1), i) for i in range(30)]
