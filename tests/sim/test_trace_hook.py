"""Tests for the engine trace hook and the run-digest helpers."""

import pytest

from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.sim.trace import EventTraceRecorder, RunDigest, write_digest


def _workload(env: Environment, seed: int) -> None:
    """A small deterministic mix of timeouts, events, and contention."""
    resource = Resource(env, capacity=2)

    def looper(env, delay):
        for _ in range(20):
            yield env.timeout(delay)

    def contender(env, resource, priority):
        for _ in range(10):
            yield resource.acquire(priority=priority)
            try:
                yield env.timeout(0.05)
            finally:
                resource.release()

    for i in range(4):
        env.process(looper(env, 0.1 + 0.01 * ((seed + i) % 5)))
    for i in range(3):
        env.process(contender(env, resource, i % 2))
    env.run()


def test_trace_hook_sees_every_processed_event():
    recorder = EventTraceRecorder()
    env = Environment(trace=recorder)
    _workload(env, seed=0)
    assert len(recorder) > 0
    times = [when for when, _p, _s, _name in recorder.entries]
    assert times == sorted(times)
    assert all(name for _w, _p, _s, name in recorder.entries)


def test_trace_property_and_default():
    recorder = EventTraceRecorder()
    assert Environment().trace is None
    assert Environment(trace=recorder).trace is recorder


def test_traced_run_matches_untraced_timeline():
    """The hook is a pure observer: tracing must not change the schedule."""
    untraced = Environment()
    _workload(untraced, seed=3)
    traced = Environment(trace=EventTraceRecorder())
    _workload(traced, seed=3)
    assert traced.now == untraced.now
    assert traced._seq == untraced._seq


def test_recorder_is_deterministic_across_runs():
    traces = []
    for _ in range(2):
        recorder = EventTraceRecorder()
        env = Environment(trace=recorder)
        _workload(env, seed=1)
        traces.append(recorder.as_bytes())
    assert traces[0] == traces[1]


def test_digest_matches_iff_traces_match():
    def run(seed: int) -> tuple[str, bytes]:
        recorder = EventTraceRecorder()
        digest = RunDigest()

        def both(when, priority, seq, event):
            recorder(when, priority, seq, event)
            digest(when, priority, seq, event)

        env = Environment(trace=both)
        _workload(env, seed=seed)
        return digest.hexdigest(), recorder.as_bytes()

    d1, t1 = run(0)
    d2, t2 = run(0)
    d3, t3 = run(2)
    assert (d1, t1) == (d2, t2)
    assert t3 != t1
    assert d3 != d1


def test_digest_counts_events_and_does_not_finalise():
    digest = RunDigest()
    env = Environment(trace=digest)
    _workload(env, seed=0)
    assert digest.events > 0
    first = digest.hexdigest()
    # hexdigest() must not finalise: the hook can keep updating after.
    assert digest.hexdigest() == first
    digest(env.now + 1.0, 0, 10**6, env.event())
    assert digest.hexdigest() != first


def test_write_digest(tmp_path):
    digest = RunDigest()
    env = Environment(trace=digest)
    _workload(env, seed=0)
    path = tmp_path / "nested" / "run.digest"
    value = write_digest(digest, path)
    assert path.read_text() == value + "\n"
    assert value == digest.hexdigest()
    # Accepts a precomputed hex string too.
    assert write_digest("abc123", tmp_path / "raw.digest") == "abc123"
    assert (tmp_path / "raw.digest").read_text() == "abc123\n"


def test_custom_step_subclass_still_supported():
    """Subclassing step() remains possible alongside the trace hook."""
    seen = []

    class CountingEnvironment(Environment):
        def step(self) -> None:
            seen.append(self.peek())
            super().step()

    env = CountingEnvironment()

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    assert len(seen) >= 2


@pytest.mark.parametrize("until", [5.0, None])
def test_trace_hook_with_until(until):
    recorder = EventTraceRecorder()
    env = Environment(trace=recorder)

    def proc(env):
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=until)
    assert len(recorder) > 0
