"""Tests for the solver's anytime (node-limited) behaviour."""

import numpy as np

from repro.solver import AllocationModel, ClassSla, ServiceOptions, solve

GRID = [50.0, 90.0, 95.0, 99.0, 99.5, 99.9]


def adversarial_model(n_services=8, n_options=6, seed=3):
    """Tie-heavy instance: identical resource vectors across services."""
    rng = np.random.default_rng(seed)
    services = []
    for k in range(n_services):
        base = rng.uniform(0.01, 0.04)
        rows = np.sort(
            np.outer(np.linspace(1, 4, n_options), base * np.linspace(1, 1.5, 6)),
            axis=1,
        )
        services.append(
            ServiceOptions(
                f"s{k}",
                resources=np.linspace(n_options * 2, 2, n_options).tolist(),
                latency={"c": rows},
            )
        )
    return AllocationModel(services, [ClassSla("c", 99.0, 0.5)], GRID)


def test_unlimited_solve_is_optimal_flagged():
    model = adversarial_model(n_services=4)
    solution = solve(model)
    assert solution.optimal


def test_node_limit_returns_feasible_incumbent():
    model = adversarial_model(n_services=8)
    solution = solve(model, node_limit=200)
    # Anytime: possibly truncated, but always feasible.
    assert solution.latency_bound["c"] <= 0.5 + 1e-9
    for svc in model.services:
        assert svc.name in solution.lpr_choice
    if not solution.optimal:
        assert solution.nodes_explored >= 200


def test_tight_limit_worse_or_equal_objective():
    model = adversarial_model(n_services=7)
    loose = solve(model, node_limit=10_000_000)
    tight = solve(model, node_limit=100)
    assert tight.objective >= loose.objective - 1e-9
