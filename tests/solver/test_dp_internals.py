"""Unit tests for the solver's internal DP primitives."""

import math

from repro.solver.branch_and_bound import (
    _class_budget_units,
    _combine,
    _dp_with_choices,
    _min_split,
)

INF = math.inf
UNITS = [500, 100, 50, 10, 5, 1]  # residual units for the default grid


def test_budget_units():
    assert _class_budget_units(99.0) == 10
    assert _class_budget_units(50.0) == 500
    assert _class_budget_units(99.9) == 1


def test_combine_respects_budget():
    dp = [0.0] * 11  # empty prefix, budget 10
    row = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    out = _combine(row, dp, UNITS)
    # Units 500/100/50 exceed the budget; cheapest feasible is beta=3
    # (10 units, latency 4.0) only at u=10; beta=5 (1 unit, latency 6.0).
    assert out[0] == INF  # every beta needs >= 1 unit
    assert out[1] == 6.0
    assert out[5] == 5.0
    assert out[10] == 4.0


def test_combine_monotone_non_increasing():
    dp = [0.0] * 11
    row = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    out = _combine(row, dp, UNITS)
    finite = [v for v in out if v != INF]
    assert finite == sorted(finite, reverse=True)


def test_min_split_combines_prefix_suffix():
    prefix = [INF, 3.0, 2.0, 2.0]
    suffix = [0.0, 0.0, 0.0, 0.0]
    assert _min_split(prefix, suffix) == 2.0
    # All-INF prefix -> INF.
    assert _min_split([INF] * 4, suffix) == INF


def test_dp_with_choices_single_row():
    total, choices = _dp_with_choices(
        [[9.0, 8.0, 7.0, 4.0, 3.0, 6.0]], UNITS, budget=10
    )
    # Budget 10: betas 3 (10u, 4.0), 4 (5u, 3.0), 5 (1u, 6.0) feasible;
    # cheapest latency is beta=4.
    assert total == 3.0
    assert choices == [4]


def test_dp_with_choices_budget_forces_tail():
    rows = [[1.0] * 5 + [2.0]] * 10  # ten services, budget 10
    total, choices = _dp_with_choices(rows, UNITS, budget=10)
    # Each service must take the 1-unit percentile (latency 2.0).
    assert choices == [5] * 10
    assert total == 20.0


def test_dp_with_choices_infeasible():
    rows = [[1.0] * 6] * 11  # eleven services, budget 10, min 1 unit each
    total, choices = _dp_with_choices(rows, UNITS, budget=10)
    assert total == INF
    assert choices is None


def test_dp_choices_sum_matches_total():
    rows = [
        [0.9, 0.7, 0.5, 0.3, 0.2, 0.1],
        [1.8, 1.4, 1.0, 0.6, 0.4, 0.2],
        [0.45, 0.35, 0.25, 0.15, 0.10, 0.05],
    ]
    total, choices = _dp_with_choices(rows, UNITS, budget=10)
    assert choices is not None
    assert sum(row[b] for row, b in zip(rows, choices)) == total
    assert sum(UNITS[b] for b in choices) <= 10
