"""Tests for the branch-and-bound MIP solver, incl. exhaustive cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleModelError, SolverError
from repro.solver import (
    AllocationModel,
    ClassSla,
    ServiceOptions,
    solve,
    solve_exhaustive,
)

GRID = [50.0, 90.0, 95.0, 99.0, 99.5, 99.9]


def chain_model(
    latencies,  # per service: base latency scalar
    targets,  # per class: target
    percentile=99.0,
    options=3,
):
    """A chain where each service's latency halves per extra LPR option
    (cheaper option = higher LPR = fewer replicas = higher latency)."""
    services = []
    for k, base in enumerate(latencies):
        resources = [options - a for a in range(options)]  # cheaper per option
        rows = []
        for a in range(options):
            # option a: latency grows with a (fewer replicas).
            scale = base * (1.0 + a)
            rows.append([scale * (1 + 0.1 * b) for b in range(len(GRID))])
        services.append(
            ServiceOptions(
                name=f"s{k}",
                resources=resources,
                latency={j: np.array(rows) for j in targets},
            )
        )
    slas = [ClassSla(j, percentile, t) for j, t in targets.items()]
    return AllocationModel(services, slas, GRID)


def test_single_service_single_class():
    model = chain_model([0.010], {"req": 1.0})
    sol = solve(model)
    # All options feasible -> cheapest (resources=1, option index 2).
    assert sol.objective == 1.0
    assert sol.lpr_choice["s0"] == 2
    assert sol.latency_bound["req"] <= 1.0


def test_tight_target_forces_expensive_option():
    # Option 0 latency ~0.01-0.011; option 2 ~0.03-0.033.
    model = chain_model([0.010], {"req": 0.015})
    sol = solve(model)
    assert sol.lpr_choice["s0"] == 0
    assert sol.objective == 3.0


def test_infeasible_raises_with_context():
    model = chain_model([1.0], {"req": 0.5})
    with pytest.raises(InfeasibleModelError) as err:
        solve(model)
    assert err.value.binding_constraints


def test_residual_budget_enforced():
    """With 10 services at p99, every service must take the 99.9th
    percentile column (residual 0.1 each, budget 1.0)."""
    model = chain_model([0.001] * 10, {"req": 10.0})
    sol = solve(model)
    for (svc, _cls), beta in sol.percentile_choice.items():
        assert GRID[beta] == 99.9


def test_too_many_services_for_budget():
    model = chain_model([0.001] * 11, {"req": 10.0})
    with pytest.raises(InfeasibleModelError, match="residual budgets"):
        solve(model)


def test_p50_class_has_large_budget():
    """A p50 SLA leaves residual budget 50: services can use cheap
    percentiles like the 50th."""
    model = chain_model([0.010] * 3, {"req": 10.0}, percentile=50.0)
    sol = solve(model)
    assert sol.objective == 3.0  # all cheapest


def test_multiple_classes_share_lpr_choice():
    """One service, two classes: the tight class forces the LPR for both."""
    rows_loose = np.tile(np.linspace(0.01, 0.02, len(GRID)), (3, 1)) * np.array(
        [[1], [2], [3]]
    )
    service = ServiceOptions(
        "s0",
        resources=[3.0, 2.0, 1.0],
        latency={"tight": rows_loose, "loose": rows_loose},
    )
    model = AllocationModel(
        [service],
        [ClassSla("tight", 99.0, 0.025), ClassSla("loose", 99.0, 10.0)],
        GRID,
    )
    sol = solve(model)
    assert sol.lpr_choice["s0"] == 0  # forced by tight
    assert sol.latency_bound["loose"] <= 10.0


def test_classes_touch_disjoint_services():
    s0 = ServiceOptions(
        "s0",
        resources=[2.0, 1.0],
        latency={"a": np.array([[0.01] * 6, [0.5] * 6])},
    )
    s1 = ServiceOptions(
        "s1",
        resources=[2.0, 1.0],
        latency={"b": np.array([[0.01] * 6, [0.012] * 6])},
    )
    model = AllocationModel(
        [s0, s1],
        [ClassSla("a", 99.0, 0.1), ClassSla("b", 99.0, 1.0)],
        GRID,
    )
    sol = solve(model)
    assert sol.lpr_choice == {"s0": 0, "s1": 1}
    assert sol.objective == 3.0


def test_latency_bound_reported_per_class():
    model = chain_model([0.01, 0.02], {"req": 1.0})
    sol = solve(model)
    s0 = model.services[0].latency["req"]
    s1 = model.services[1].latency["req"]
    expected = (
        s0[sol.lpr_choice["s0"], sol.percentile_choice[("s0", "req")]]
        + s1[sol.lpr_choice["s1"], sol.percentile_choice[("s1", "req")]]
    )
    assert sol.latency_bound["req"] == pytest.approx(expected)


def test_matches_exhaustive_on_fixed_instances():
    for latencies, targets in [
        ([0.01, 0.02, 0.005], {"req": 0.08}),
        ([0.01, 0.02, 0.005], {"req": 0.15}),
        ([0.05], {"req": 0.2}),
        ([0.004, 0.008], {"a": 0.05, "b": 0.04}),
    ]:
        classes = {j: t for j, t in targets.items()}
        model = chain_model(latencies, classes)
        fast = solve(model)
        slow = solve_exhaustive(model)
        assert fast.objective == pytest.approx(slow.objective)


@given(
    n_services=st.integers(1, 4),
    n_options=st.integers(1, 4),
    seed=st.integers(0, 10_000),
    target=st.floats(0.02, 0.5),
)
@settings(max_examples=40, deadline=None)
def test_property_matches_exhaustive(n_services, n_options, seed, target):
    rng = np.random.default_rng(seed)
    services = []
    for k in range(n_services):
        base = rng.uniform(0.001, 0.05)
        rows = np.sort(
            rng.uniform(base, base * 4, size=(n_options, len(GRID))), axis=1
        )
        services.append(
            ServiceOptions(
                f"s{k}",
                resources=rng.uniform(0.5, 5.0, n_options).tolist(),
                latency={"req": rows},
            )
        )
    model = AllocationModel(services, [ClassSla("req", 99.0, target)], GRID)
    try:
        fast = solve(model)
    except InfeasibleModelError:
        with pytest.raises(InfeasibleModelError):
            solve_exhaustive(model)
        return
    slow = solve_exhaustive(model)
    assert fast.objective == pytest.approx(slow.objective)
    # The reported bound must respect the constraint.
    assert fast.latency_bound["req"] <= target + 1e-9


def test_solution_respects_all_constraints_property():
    rng = np.random.default_rng(7)
    services = []
    classes = ["a", "b", "c"]
    for k in range(5):
        served = [c for c in classes if rng.random() < 0.8] or ["a"]
        rows = {
            c: np.sort(rng.uniform(0.001, 0.02, size=(3, len(GRID))), axis=1)
            for c in served
        }
        services.append(
            ServiceOptions(
                f"s{k}", resources=rng.uniform(1, 4, 3).tolist(), latency=rows
            )
        )
    slas = [ClassSla(c, 99.0, 0.2) for c in classes]
    model = AllocationModel(services, slas, GRID)
    sol = solve(model)
    # Verify constraint 1 and 2 manually.
    for sla in slas:
        total_latency = 0.0
        total_residual = 0.0
        for svc in model.services_for(sla.name):
            a = sol.lpr_choice[svc.name]
            b = sol.percentile_choice[(svc.name, sla.name)]
            total_latency += svc.latency[sla.name][a, b]
            total_residual += 100.0 - GRID[b]
        assert total_latency <= sla.target_s + 1e-9
        assert total_residual <= 100.0 - sla.percentile + 1e-9
        assert sol.latency_bound[sla.name] == pytest.approx(total_latency)


def test_model_validation():
    with pytest.raises(SolverError):
        ServiceOptions("s", resources=[], latency={})
    with pytest.raises(SolverError):
        ServiceOptions("s", resources=[-1.0], latency={})
    with pytest.raises(SolverError):
        ServiceOptions(
            "s", resources=[1.0], latency={"j": np.zeros((2, len(GRID)))}
        )
    good = ServiceOptions("s", resources=[1.0], latency={"j": np.zeros((1, 6))})
    with pytest.raises(SolverError):
        AllocationModel([], [ClassSla("j", 99, 1)], GRID)
    with pytest.raises(SolverError):
        AllocationModel([good], [], GRID)
    with pytest.raises(SolverError):
        AllocationModel([good], [ClassSla("j", 99, 1)], [99.0, 50.0])
    with pytest.raises(SolverError):
        AllocationModel([good], [ClassSla("other", 99, 1)], GRID)
    with pytest.raises(SolverError):
        # grid size mismatch (matrix has 6 columns, grid 3).
        AllocationModel([good], [ClassSla("j", 99, 1)], [50.0, 90.0, 99.0])


def test_bad_residual_grid_rejected():
    good = ServiceOptions("s", resources=[1.0], latency={"j": np.zeros((1, 2))})
    model = AllocationModel(
        [good], [ClassSla("j", 99, 1)], [50.0, 99.03]
    )
    with pytest.raises(SolverError, match="multiple"):
        solve(model)


def test_nodes_explored_reported():
    model = chain_model([0.01, 0.02, 0.005], {"req": 0.15})
    sol = solve(model)
    assert sol.nodes_explored > 0
