"""Tests for empirical distributions and percentile math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import EmpiricalDistribution, percentile


def test_percentile_matches_numpy():
    rng = np.random.default_rng(0)
    values = sorted(rng.exponential(10, 500).tolist())
    for q in [0, 10, 50, 90, 99, 99.9, 100]:
        assert percentile(values, q) == pytest.approx(np.percentile(values, q))


def test_percentile_single_value():
    assert percentile([5.0], 99) == 5.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_add_and_query():
    dist = EmpiricalDistribution.from_samples([3.0, 1.0, 2.0])
    assert dist.count == 3
    assert dist.mean == pytest.approx(2.0)
    assert dist.min == 1.0
    assert dist.max == 3.0
    assert dist.percentile(50) == 2.0


def test_negative_sample_rejected():
    dist = EmpiricalDistribution()
    with pytest.raises(ValueError):
        dist.add(-1.0)


def test_empty_queries_raise():
    dist = EmpiricalDistribution()
    assert not dist
    for attr in ("mean", "max", "min"):
        with pytest.raises(ValueError):
            getattr(dist, attr)
    with pytest.raises(ValueError):
        dist.percentile(50)
    with pytest.raises(ValueError):
        dist.fraction_above(1.0)


def test_fraction_above():
    dist = EmpiricalDistribution.from_samples([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
    assert dist.fraction_above(5) == pytest.approx(0.5)
    assert dist.fraction_above(10) == 0.0
    assert dist.fraction_above(0) == 1.0


def test_cdf_monotone():
    dist = EmpiricalDistribution.from_samples([1.0, 2.0, 2.0, 3.0])
    assert dist.cdf(0.5) == 0.0
    assert dist.cdf(2.0) == pytest.approx(0.75)
    assert dist.cdf(3.0) == 1.0


def test_merge_pools_samples():
    a = EmpiricalDistribution.from_samples([1.0, 3.0])
    b = EmpiricalDistribution.from_samples([2.0, 4.0])
    merged = a.merge(b)
    assert merged.count == 4
    assert merged.samples() == [1.0, 2.0, 3.0, 4.0]
    # Originals untouched.
    assert a.count == 2 and b.count == 2


def test_percentiles_vector():
    dist = EmpiricalDistribution.from_samples(range(101))
    grid = [50.0, 90.0, 99.0]
    assert dist.percentiles(grid) == [50.0, 90.0, 99.0]


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
@settings(max_examples=60)
def test_property_percentile_bounds(values):
    dist = EmpiricalDistribution.from_samples(values)
    import math

    for q in [0, 25, 50, 75, 99, 100]:
        p = dist.percentile(q)
        assert dist.min <= p or math.isclose(dist.min, p)
        assert p <= dist.max or math.isclose(p, dist.max)


@given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
@settings(max_examples=60)
def test_property_percentile_monotone_in_q(values):
    dist = EmpiricalDistribution.from_samples(values)
    grid = [0, 10, 50, 90, 99, 100]
    ps = dist.percentiles(grid)
    assert all(a <= b + 1e-9 for a, b in zip(ps, ps[1:]))


@given(
    st.lists(st.floats(0, 100), min_size=1, max_size=50),
    st.floats(0, 100),
)
@settings(max_examples=60)
def test_property_fraction_above_complements_cdf(values, threshold):
    dist = EmpiricalDistribution.from_samples(values)
    assert dist.fraction_above(threshold) == pytest.approx(
        1.0 - dist.cdf(threshold)
    )
