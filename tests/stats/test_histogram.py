"""FixedHistogram: error bounds, merging, and pickle-size reduction."""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.stats.distributions import EmpiricalDistribution
from repro.stats.histogram import FixedHistogram


def _skewed_latencies(n: int, seed: int) -> list[float]:
    """Lognormal body plus a heavy tail -- the shape of request latency."""
    rng = random.Random(seed)  # ursalint: disable=SIM002 -- seeded local test-data generator
    samples = [math.exp(rng.gauss(math.log(0.08), 0.6)) for _ in range(n)]
    # ~2% of requests hit queueing spikes an order of magnitude slower.
    for i in range(0, n, 50):
        samples[i] *= rng.uniform(8.0, 25.0)
    return samples


def test_percentiles_within_documented_bound() -> None:
    samples = _skewed_latencies(20_000, seed=7)
    exact = EmpiricalDistribution.from_samples(samples)
    hist = FixedHistogram.from_samples(samples)
    bound = hist.relative_error_bound
    assert bound < 0.005
    for q in (50, 75, 90, 95, 99, 99.5, 99.9):
        true = exact.percentile(q)
        approx = hist.percentile(q)
        assert abs(approx - true) / true <= bound + 1e-9, (
            f"p{q}: {approx} vs {true}"
        )


def test_p99_and_violation_rate_deviation_under_one_percent() -> None:
    # The acceptance-criteria check: P99 and SLA-violation-rate deviation
    # < 1% vs raw samples on realistically skewed data.
    samples = _skewed_latencies(50_000, seed=23)
    exact = EmpiricalDistribution.from_samples(samples)
    hist = FixedHistogram.from_samples(samples)

    p99_exact = exact.percentile(99)
    p99_hist = hist.percentile(99)
    assert abs(p99_hist - p99_exact) / p99_exact < 0.01

    sla = exact.percentile(90)  # a threshold inside the distribution body
    frac_exact = exact.fraction_above(sla)
    frac_hist = hist.fraction_above(sla)
    assert abs(frac_hist - frac_exact) < 0.01


def test_exact_aggregates_are_exact() -> None:
    samples = _skewed_latencies(5_000, seed=3)
    hist = FixedHistogram.from_samples(samples)
    assert hist.count == len(samples)
    assert hist.min == min(samples)
    assert hist.max == max(samples)
    assert hist.mean == pytest.approx(sum(samples) / len(samples))
    assert len(hist) == len(samples)
    assert bool(hist)


def test_underflow_and_overflow_buckets() -> None:
    hist = FixedHistogram(min_value=1e-3, max_value=1.0, bins=64)
    hist.record(1e-6)  # underflow
    hist.record(0.5)
    hist.record(50.0)  # overflow
    assert hist.count == 3
    assert hist.min == 1e-6
    assert hist.max == 50.0
    # p0/p100 clamp to the exact extremes.
    assert hist.percentile(0) == pytest.approx(1e-6)
    assert hist.percentile(100) == pytest.approx(50.0)
    assert hist.fraction_above(1.0) == pytest.approx(1 / 3)


def test_fraction_above_edge_cases() -> None:
    hist = FixedHistogram.from_samples([0.1] * 10)
    assert hist.fraction_above(10.0) == 0.0
    assert hist.fraction_above(0.0) == 1.0


def test_merge_pools_counts_and_preserves_bounds() -> None:
    a_samples = _skewed_latencies(4_000, seed=1)
    b_samples = _skewed_latencies(4_000, seed=2)
    a = FixedHistogram.from_samples(a_samples)
    b = FixedHistogram.from_samples(b_samples)
    merged = a.merge(b)
    pooled = FixedHistogram.from_samples(a_samples + b_samples)
    assert merged.count == pooled.count
    assert merged.min == pooled.min
    assert merged.max == pooled.max
    assert merged.mean == pytest.approx(pooled.mean)
    for q in (50, 95, 99):
        assert merged.percentile(q) == pytest.approx(pooled.percentile(q))


def test_merge_rejects_mismatched_bucketing() -> None:
    a = FixedHistogram(bins=64)
    b = FixedHistogram(bins=128)
    with pytest.raises(ValueError, match="bucketing"):
        a.merge(b)


def test_determinism_same_samples_same_pickle() -> None:
    samples = _skewed_latencies(1_000, seed=11)
    a = FixedHistogram.from_samples(samples)
    b = FixedHistogram.from_samples(samples)
    assert pickle.dumps(a) == pickle.dumps(b)


def test_pickle_round_trip() -> None:
    samples = _skewed_latencies(2_000, seed=5)
    hist = FixedHistogram.from_samples(samples)
    clone = pickle.loads(pickle.dumps(hist))
    assert clone.count == hist.count
    assert clone.percentile(99) == hist.percentile(99)
    assert clone.fraction_above(0.2) == hist.fraction_above(0.2)


def test_pickle_size_reduction_at_least_10x() -> None:
    # Acceptance criterion: the histogram pickles >= 10x smaller than the
    # raw-sample distribution it summarises, at full-scale sample counts.
    samples = _skewed_latencies(100_000, seed=42)
    raw = pickle.dumps(EmpiricalDistribution.from_samples(samples))
    summarised = pickle.dumps(FixedHistogram.from_samples(samples))
    assert len(raw) >= 10 * len(summarised), (
        f"raw={len(raw)}B hist={len(summarised)}B "
        f"ratio={len(raw) / len(summarised):.1f}x"
    )


def test_constructor_validation() -> None:
    with pytest.raises(ValueError):
        FixedHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        FixedHistogram(min_value=1.0, max_value=0.5)
    with pytest.raises(ValueError):
        FixedHistogram(bins=0)
    hist = FixedHistogram()
    with pytest.raises(ValueError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.record(1.0, count=0)
    with pytest.raises(ValueError):
        hist.percentile(50)
    with pytest.raises(ValueError):
        hist.fraction_above(1.0)
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
