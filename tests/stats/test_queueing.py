"""Tests for the M/M/c formulas, incl. simulator-vs-theory validation."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Environment, Exponential, RandomStreams
from repro.stats.queueing import (
    erlang_c,
    mm1_response_percentile,
    mmc_mean_response,
    mmc_mean_wait,
    mmc_utilization,
    servers_for_target_wait,
)
from repro.workload import ConstantLoad, LoadGenerator, RequestMix


def test_erlang_c_known_values():
    # Classic check: offered load 2 Erlangs on 3 servers.
    p = erlang_c(arrival_rate=2.0, service_rate=1.0, servers=3)
    assert p == pytest.approx(0.4444, abs=1e-3)
    # Single server: P(wait) = rho.
    assert erlang_c(0.7, 1.0, 1) == pytest.approx(0.7)


def test_mm1_mean_wait_formula():
    # M/M/1: W_q = rho / (mu - lambda).
    lam, mu = 0.8, 1.0
    assert mmc_mean_wait(lam, mu, 1) == pytest.approx(lam / mu / (mu - lam))


def test_mean_response_adds_service_time():
    lam, mu = 1.0, 2.0
    assert mmc_mean_response(lam, mu, 1) == pytest.approx(
        mmc_mean_wait(lam, mu, 1) + 0.5
    )


def test_utilization():
    assert mmc_utilization(3.0, 1.0, 4) == pytest.approx(0.75)


def test_instability_rejected():
    with pytest.raises(ConfigurationError):
        mmc_mean_wait(2.0, 1.0, 2)
    with pytest.raises(ConfigurationError):
        erlang_c(0, 1.0, 1)


def test_servers_for_target_wait_monotone():
    few = servers_for_target_wait(10.0, 1.0, target_wait_s=1.0)
    many = servers_for_target_wait(10.0, 1.0, target_wait_s=0.01)
    assert many >= few >= 11
    with pytest.raises(ConfigurationError):
        servers_for_target_wait(10.0, 1.0, 0)


def test_mm1_percentile():
    lam, mu = 0.5, 1.0
    # Median of Exp(mu - lam): ln(2) / 0.5.
    assert mm1_response_percentile(lam, mu, 50.0) == pytest.approx(
        1.3863, abs=1e-3
    )
    with pytest.raises(ConfigurationError):
        mm1_response_percentile(0.5, 1.0, 100)


@pytest.mark.parametrize(
    "cpus,rps", [(1, 60.0), (2, 140.0), (4, 300.0)]
)
def test_simulator_matches_erlang_c(cpus, rps):
    """A single service with exponential work is an M/M/c queue; the
    simulated mean response must match theory within sampling error."""
    service_time = 0.010  # mean seconds -> mu = 100/s per core
    spec = AppSpec(
        "mmc",
        services=(
            ServiceSpec(
                "svc",
                cpus_per_replica=cpus,
                handlers={"r": Exponential(service_time)},
                threads_per_cpu=64,  # threads never the bottleneck
            ),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 60)),),
    )
    env = Environment()
    app = Application(
        spec, env=env, cluster=Cluster(env, nodes=[Node("n", 32, 64)]),
        streams=RandomStreams(17), initial_replicas=1, network_delay_s=0.0,
        utilization_sample_interval_s=0,
    )
    env.run(until=10)
    LoadGenerator(app, ConstantLoad(rps), RequestMix({"r": 1.0}),
                  RandomStreams(18), stop_at_s=400).start()
    env.run(until=400)
    dist = app.hub.latency_distribution("request_latency", 60, 400, {"request": "r"})
    theory = mmc_mean_response(rps, 1.0 / service_time, cpus)
    assert dist.count > 5000
    assert dist.mean == pytest.approx(theory, rel=0.12)
