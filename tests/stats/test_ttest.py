"""Tests for the from-scratch Welch t-test, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.ttest import (
    _betainc_cf,
    _student_t_sf,
    mean_exceeds,
    means_differ,
    welch_t_test,
)


def test_matches_scipy_two_sided():
    rng = np.random.default_rng(0)
    a = rng.normal(10, 2, 30).tolist()
    b = rng.normal(11, 3, 25).tolist()
    ours = welch_t_test(a, b)
    ref = scipy.stats.ttest_ind(a, b, equal_var=False)
    assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
    assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)


def test_matches_scipy_one_sided():
    rng = np.random.default_rng(1)
    a = rng.normal(12, 2, 20).tolist()
    b = rng.normal(10, 2, 20).tolist()
    ours = welch_t_test(a, b, alternative="greater")
    ref = scipy.stats.ttest_ind(a, b, equal_var=False, alternative="greater")
    assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)
    ours_less = welch_t_test(a, b, alternative="less")
    ref_less = scipy.stats.ttest_ind(a, b, equal_var=False, alternative="less")
    assert ours_less.p_value == pytest.approx(ref_less.pvalue, rel=1e-6)


def test_identical_samples_do_not_differ():
    a = [1.0, 2.0, 3.0, 4.0]
    assert not means_differ(a, list(a))


def test_clearly_different_samples_differ():
    a = [1.0, 1.1, 0.9, 1.05, 0.95] * 4
    b = [5.0, 5.1, 4.9, 5.05, 4.95] * 4
    assert means_differ(a, b)


def test_mean_exceeds_directionality():
    low = [1.0, 1.1, 0.9, 1.05, 0.95] * 4
    high = [2.0, 2.1, 1.9, 2.05, 1.95] * 4
    assert mean_exceeds(high, low)
    assert not mean_exceeds(low, high)
    assert not mean_exceeds(low, list(low))


def test_constant_samples_equal():
    result = welch_t_test([2.0, 2.0, 2.0], [2.0, 2.0])
    assert result.p_value == 1.0


def test_constant_samples_unequal():
    result = welch_t_test([2.0, 2.0, 2.0], [3.0, 3.0])
    assert result.p_value == 0.0
    assert result.rejects_at(0.05)


def test_short_samples_rejected():
    with pytest.raises(ValueError):
        welch_t_test([1.0], [1.0, 2.0])


def test_bad_alternative_rejected():
    with pytest.raises(ValueError):
        welch_t_test([1.0, 2.0], [1.0, 2.0], alternative="sideways")


def test_bad_alpha_rejected():
    result = welch_t_test([1.0, 2.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        result.rejects_at(0)


def test_betainc_fallback_matches_scipy():
    from scipy.special import betainc

    for a, b, x in [(0.5, 0.5, 0.3), (2.0, 3.0, 0.7), (10.0, 0.5, 0.95)]:
        assert _betainc_cf(a, b, x) == pytest.approx(float(betainc(a, b, x)), abs=1e-9)
    assert _betainc_cf(1.0, 1.0, 0.0) == 0.0
    assert _betainc_cf(1.0, 1.0, 1.0) == 1.0


def test_student_sf_matches_scipy():
    for t, df in [(0.0, 5), (1.5, 10), (-2.0, 3), (4.0, 30)]:
        assert _student_t_sf(t, df) == pytest.approx(
            scipy.stats.t.sf(t, df), abs=1e-9
        )


@given(
    loc_a=st.floats(-100, 100),
    loc_b=st.floats(-100, 100),
    scale=st.floats(0.1, 10),
    n=st.integers(5, 50),
)
@settings(max_examples=40, deadline=None)
def test_property_matches_scipy(loc_a, loc_b, scale, n):
    rng = np.random.default_rng(abs(hash((loc_a, loc_b, scale, n))) % 2**31)
    a = rng.normal(loc_a, scale, n).tolist()
    b = rng.normal(loc_b, scale, n + 3).tolist()
    ours = welch_t_test(a, b)
    ref = scipy.stats.ttest_ind(a, b, equal_var=False)
    assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-5, abs=1e-9)


def test_false_positive_rate_is_near_alpha():
    """Under the null, rejection frequency should be close to alpha."""
    rng = np.random.default_rng(42)
    rejections = 0
    trials = 400
    for _ in range(trials):
        a = rng.normal(0, 1, 20).tolist()
        b = rng.normal(0, 1, 20).tolist()
        if means_differ(a, b, alpha=0.05):
            rejections += 1
    assert rejections / trials == pytest.approx(0.05, abs=0.03)
