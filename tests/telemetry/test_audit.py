"""Budget audit: observed critical-path dominance vs MIP budgets.

Drives :func:`audit_budgets` with hand-built critical-path aggregates so
each verdict branch is pinned against exact shares: a deliberately
mis-budgeted class must be flagged, a consistent one must stay quiet,
and thin evidence (few traces, near-ties, missing budgets) must yield no
accusation at all.
"""

from repro.telemetry.audit import (
    audit_budgets,
    render_audit,
    verdicts_payload,
)


class Aggregate:
    """Duck-typed stand-in for tracing's pooled per-class aggregate."""

    def __init__(self, requests, by_location):
        self.requests = requests
        self.by_location = by_location


class Summary:
    """Duck-typed stand-in for CriticalPathSummary (classes + pooled)."""

    def __init__(self, aggregates):
        self._aggregates = aggregates

    def classes(self):
        return list(self._aggregates)

    def pooled(self, cls):
        return self._aggregates[cls]


def test_mis_budgeted_class_is_flagged():
    # Observed time concentrates on the database; the MIP budgeted the
    # frontend most.  The model has drifted from the system.
    summary = Summary(
        {
            "read": Aggregate(
                requests=50,
                by_location={
                    ("db", "service"): 8.0,
                    ("db", "queue"): 1.0,
                    ("frontend", "service"): 1.0,
                },
            )
        }
    )
    budgets = {"read": {"frontend": 0.08, "db": 0.02}}
    verdicts = audit_budgets(summary, budgets)
    assert len(verdicts) == 1
    v = verdicts[0]
    assert v.mismatch
    assert v.observed_service == "db"
    assert v.observed_share == 0.9  # (8 + 1) / 10, phases pooled
    assert v.budget_service == "frontend"
    assert abs(v.budget_share - 0.8) < 1e-12
    assert "db" in v.detail and "frontend" in v.detail
    assert v.traced_requests == 50


def test_consistent_budgets_stay_quiet():
    summary = Summary(
        {
            "read": Aggregate(
                requests=50,
                by_location={
                    ("frontend", "service"): 7.0,
                    ("db", "service"): 3.0,
                },
            )
        }
    )
    budgets = {"read": {"frontend": 0.08, "db": 0.02}}
    (v,) = audit_budgets(summary, budgets)
    assert not v.mismatch
    assert v.observed_service == v.budget_service == "frontend"
    assert "consistent" in v.detail


def test_near_tie_within_margin_is_not_a_mismatch():
    # Leaders differ, but the budgeted service is observed within the
    # dominance margin of the leader: too close to accuse the model.
    summary = Summary(
        {
            "read": Aggregate(
                requests=50,
                by_location={
                    ("db", "service"): 5.2,
                    ("frontend", "service"): 4.8,
                },
            )
        }
    )
    budgets = {"read": {"frontend": 0.06, "db": 0.04}}
    (v,) = audit_budgets(summary, budgets, dominance_margin=0.1)
    assert not v.mismatch
    # Shrinking the margin flips the same evidence into a flag.
    (v,) = audit_budgets(summary, budgets, dominance_margin=0.01)
    assert v.mismatch


def test_thin_or_unbudgeted_classes_yield_no_verdict():
    summary = Summary(
        {
            "thin": Aggregate(
                requests=3, by_location={("db", "service"): 1.0}
            ),
            "unbudgeted": Aggregate(
                requests=50, by_location={("db", "service"): 1.0}
            ),
            "foreign": Aggregate(
                # Only services absent from the budgets: no overlap to
                # compare, hence no verdict.
                requests=50,
                by_location={("cdn", "service"): 1.0},
            ),
        }
    )
    budgets = {
        "thin": {"db": 0.05},
        "foreign": {"db": 0.05},
    }
    assert audit_budgets(summary, budgets, min_traced=5) == []


def test_services_outside_the_budget_are_ignored():
    # The sidecar cache shows up on the critical path but has no budget
    # row; shares are computed over budgeted services only.
    summary = Summary(
        {
            "read": Aggregate(
                requests=50,
                by_location={
                    ("cache", "service"): 100.0,
                    ("frontend", "service"): 3.0,
                    ("db", "service"): 1.0,
                },
            )
        }
    )
    budgets = {"read": {"frontend": 0.08, "db": 0.02}}
    (v,) = audit_budgets(summary, budgets)
    assert v.observed_service == "frontend"
    assert abs(v.observed_share - 0.75) < 1e-12
    assert not v.mismatch


def test_verdicts_sorted_and_payload_keyed_by_class():
    summary = Summary(
        {
            "write": Aggregate(
                requests=10, by_location={("db", "service"): 1.0}
            ),
            "read": Aggregate(
                requests=10, by_location={("frontend", "service"): 1.0}
            ),
        }
    )
    budgets = {
        "write": {"db": 0.05},
        "read": {"frontend": 0.05},
    }
    verdicts = audit_budgets(summary, budgets)
    assert [v.request_class for v in verdicts] == ["read", "write"]
    payload = verdicts_payload(verdicts)
    assert set(payload) == {"read", "write"}
    assert payload["read"]["observed_share"] == 1.0
    assert payload["read"]["mismatch"] is False


def test_render_audit_lines():
    summary = Summary(
        {
            "read": Aggregate(
                requests=50,
                by_location={
                    ("db", "service"): 9.0,
                    ("frontend", "service"): 1.0,
                },
            )
        }
    )
    budgets = {"read": {"frontend": 0.09, "db": 0.01}}
    text = render_audit(audit_budgets(summary, budgets))
    assert "MISMATCH" in text
    assert "read" in text
    assert render_audit([]).startswith("budget audit: no classes")
