"""Tests for telemetry export helpers."""

import csv
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.export import (
    export_gauge_csv,
    export_latency_percentiles_csv,
    export_summary_json,
)
from repro.telemetry.metrics import MetricsHub


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def hub():
    clock = Clock()
    hub = MetricsHub(clock, window_s=10.0, registry=None)
    for window in range(6):
        clock.now = window * 10.0 + 1.0
        hub.observe_gauge("cpu", 0.1 * window, {"service": "s"})
        for value in (0.01, 0.02, 0.05):
            hub.record_latency("lat", value * (window + 1), {"request": "r"})
        hub.inc_counter("reqs", 3, {"request": "r"})
    return hub


def test_export_gauge_csv(hub, tmp_path):
    path = tmp_path / "gauge.csv"
    rows = export_gauge_csv(hub, "cpu", 0, 60, path, {"service": "s"})
    assert rows == 6
    with path.open() as fh:
        reader = list(csv.reader(fh))
    assert reader[0] == ["time_s", "cpu"]
    assert len(reader) == 7
    assert float(reader[1][1]) == pytest.approx(0.0)


def test_export_latency_csv(hub, tmp_path):
    path = tmp_path / "lat.csv"
    rows = export_latency_percentiles_csv(
        hub, "lat", 0, 60, path, {"request": "r"}, percentiles=(50.0, 99.0)
    )
    assert rows == 6
    with path.open() as fh:
        reader = list(csv.reader(fh))
    assert reader[0] == ["time_s", "p50", "p99"]
    # Later windows have larger latencies.
    assert float(reader[6][1]) > float(reader[1][1])


def test_export_latency_csv_validates_window(hub, tmp_path):
    with pytest.raises(TelemetryError):
        export_latency_percentiles_csv(
            hub, "lat", 0, 60, tmp_path / "x.csv", window_s=0
        )


def test_export_summary_json(hub, tmp_path):
    path = tmp_path / "summary.json"
    export_summary_json(hub, ["lat", "reqs", "cpu"], 0, 60, path)
    data = json.loads(path.read_text())
    assert set(data) == {"lat", "reqs", "cpu"}
    lat = data["lat"][0]
    assert lat["count"] == 18
    reqs = data["reqs"][0]
    assert reqs["total"] == 18
