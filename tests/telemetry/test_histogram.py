"""Tests for the log-bucketed latency histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.histogram import LatencyHistogram


def test_count_sum_mean():
    hist = LatencyHistogram()
    for v in [1.0, 2.0, 3.0]:
        hist.record(v)
    assert hist.count == 3
    assert hist.sum == pytest.approx(6.0)
    assert hist.mean == pytest.approx(2.0)
    assert hist.min == 1.0
    assert hist.max == 3.0


def test_record_with_count():
    hist = LatencyHistogram()
    hist.record(5.0, count=10)
    assert hist.count == 10
    assert hist.sum == pytest.approx(50.0)


def test_percentile_within_relative_error():
    rng = np.random.default_rng(0)
    values = rng.lognormal(0, 1, 20000)
    hist = LatencyHistogram(growth=1.02)
    for v in values:
        hist.record(float(v))
    for q in [50, 90, 99, 99.9]:
        true = np.percentile(values, q)
        assert hist.percentile(q) == pytest.approx(true, rel=0.05)


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        LatencyHistogram().percentile(50)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        LatencyHistogram(min_value=0)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)
    hist = LatencyHistogram()
    with pytest.raises(ValueError):
        hist.record(-1)
    with pytest.raises(ValueError):
        hist.record(1, count=0)
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_percentile_never_exceeds_max():
    hist = LatencyHistogram()
    hist.record(100.0)
    assert hist.percentile(100) == 100.0


def test_fraction_above():
    hist = LatencyHistogram()
    for v in [1.0] * 90 + [100.0] * 10:
        hist.record(v)
    assert hist.fraction_above(10.0) == pytest.approx(0.1)


def test_merge():
    a = LatencyHistogram()
    b = LatencyHistogram()
    a.record(1.0)
    b.record(10.0)
    merged = a.merge(b)
    assert merged.count == 2
    assert merged.min == 1.0
    assert merged.max == 10.0
    assert merged.sum == pytest.approx(11.0)


def test_merge_incompatible_bucketing():
    a = LatencyHistogram(growth=1.02)
    b = LatencyHistogram(growth=1.1)
    with pytest.raises(ValueError):
        a.merge(b)


def test_tiny_values_land_in_floor_bucket():
    hist = LatencyHistogram(min_value=1e-3)
    hist.record(1e-9)
    assert hist.count == 1
    assert hist.percentile(50) <= 1e-3


@given(st.lists(st.floats(1e-4, 1e5), min_size=1, max_size=300))
@settings(max_examples=50)
def test_property_percentile_relative_error(values):
    """Rank-based percentile is bracketed within one bucket width (2 %)."""
    hist = LatencyHistogram(growth=1.02)
    for v in values:
        hist.record(v)
    arr = np.array(values)
    for q in [50.0, 99.0]:
        true = float(np.percentile(arr, q, method="inverted_cdf"))
        approx = hist.percentile(q)
        assert approx <= hist.max
        assert true * (1 - 1e-9) <= approx <= true * 1.02 * (1 + 1e-9)
