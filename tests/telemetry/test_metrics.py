"""Tests for the windowed metrics hub."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsHub, labels_key


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def hub(clock):
    # registry=None: these tests use ad-hoc metric names on purpose.
    return MetricsHub(clock, window_s=60.0, registry=None)


def test_labels_key_canonical():
    assert labels_key({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))
    assert labels_key(None) == ()
    assert labels_key({}) == ()


def test_latency_windowing(hub, clock):
    labels = {"service": "post"}
    clock.now = 10.0
    hub.record_latency("service_latency", 1.0, labels)
    clock.now = 70.0
    hub.record_latency("service_latency", 9.0, labels)
    first = hub.latency_distribution("service_latency", 0, 60, labels)
    assert first.samples() == [1.0]
    both = hub.latency_distribution("service_latency", 0, 120, labels)
    assert both.count == 2


def test_latency_percentile_default(hub):
    assert (
        hub.latency_percentile("missing", 99, 0, 60, default=0.0) == 0.0
    )
    with pytest.raises(TelemetryError):
        hub.latency_percentile("missing", 99, 0, 60)


def test_counter_total_and_rate(hub, clock):
    clock.now = 5.0
    hub.inc_counter("requests_total", 3, {"request": "post"})
    clock.now = 65.0
    hub.inc_counter("requests_total", 7, {"request": "post"})
    assert hub.counter_total("requests_total", 0, 120, {"request": "post"}) == 10
    assert hub.counter_rate("requests_total", 0, 120, {"request": "post"}) == pytest.approx(10 / 120)
    # Missing counters read as zero (Prometheus semantics).
    assert hub.counter_total("requests_total", 0, 120, {"request": "other"}) == 0


def test_negative_counter_rejected(hub):
    with pytest.raises(TelemetryError):
        hub.inc_counter("c", -1)


def test_rate_empty_interval_rejected(hub):
    with pytest.raises(TelemetryError):
        hub.counter_rate("c", 10, 10)


def test_gauge_mean_and_series(hub, clock):
    clock.now = 1.0
    hub.observe_gauge("cpu_utilization", 0.5, {"service": "post"})
    clock.now = 2.0
    hub.observe_gauge("cpu_utilization", 0.7, {"service": "post"})
    clock.now = 61.0
    hub.observe_gauge("cpu_utilization", 0.9, {"service": "post"})
    assert hub.gauge_mean("cpu_utilization", 0, 60, {"service": "post"}) == pytest.approx(0.6)
    series = hub.gauge_series("cpu_utilization", 0, 120, {"service": "post"})
    assert series == [(0.0, pytest.approx(0.6)), (60.0, pytest.approx(0.9))]


def test_gauge_mean_default(hub):
    assert hub.gauge_mean("missing", 0, 60, default=0.0) == 0.0
    with pytest.raises(TelemetryError):
        hub.gauge_mean("missing", 0, 60)


def test_label_sets(hub, clock):
    hub.inc_counter("m", 1, {"a": "1"})
    hub.record_latency("m", 1.0, {"a": "2"})
    hub.observe_gauge("m", 1.0, {"a": "3"})
    assert hub.label_sets("m") == [{"a": "1"}, {"a": "2"}, {"a": "3"}]


def test_invalid_window(clock):
    with pytest.raises(TelemetryError):
        MetricsHub(clock, window_s=0)


def test_query_interval_validation(hub):
    with pytest.raises(TelemetryError):
        hub.latency_distribution("m", 10, 5)


def test_label_isolation(hub, clock):
    hub.record_latency("lat", 1.0, {"service": "a"})
    hub.record_latency("lat", 100.0, {"service": "b"})
    dist = hub.latency_distribution("lat", 0, 60, {"service": "a"})
    assert dist.samples() == [1.0]


# -- interned handles and the fixed latency store ----------------------


def test_counter_handle_shares_series_with_string_path(hub, clock):
    labels = {"request": "post"}
    handle = hub.counter_handle("requests_total", labels)
    clock.now = 5.0
    handle.inc()
    hub.inc_counter("requests_total", 2, labels)  # string path, same series
    clock.now = 65.0
    handle.inc(4)
    assert hub.counter_total("requests_total", 0, 60, labels) == 3
    assert hub.counter_total("requests_total", 0, 120, labels) == 7


def test_latency_handle_shares_series_with_string_path(hub, clock):
    labels = {"service": "post"}
    handle = hub.latency_handle("service_latency", labels)
    clock.now = 10.0
    handle.record(1.0)
    hub.record_latency("service_latency", 3.0, labels)
    clock.now = 70.0
    handle.record(9.0)
    first = hub.latency_distribution("service_latency", 0, 60, labels)
    assert sorted(first.samples()) == [1.0, 3.0]
    assert hub.latency_distribution("service_latency", 0, 120, labels).count == 3


def test_counter_handle_rejects_negative(hub):
    handle = hub.counter_handle("requests_total")
    with pytest.raises(TelemetryError):
        handle.inc(-1)


def test_handle_creation_runs_registry_check(clock):
    from repro.telemetry.registry import DEFAULT_REGISTRY

    strict = MetricsHub(clock, registry=DEFAULT_REGISTRY, strict=True)
    with pytest.raises(TelemetryError):
        strict.counter_handle("definitely_not_a_registered_metric")
    with pytest.raises(TelemetryError):
        strict.latency_handle("definitely_not_a_registered_metric")


def test_labels_accept_canonical_tuples(hub, clock):
    """Pre-canonicalized LabelSet tuples skip re-keying but hit the
    same series as dict labels."""
    key = labels_key({"service": "post"})
    clock.now = 5.0
    hub.inc_counter("requests_total", 1, key)
    hub.inc_counter("requests_total", 1, {"service": "post"})
    assert hub.counter_total("requests_total", 0, 60, key) == 2
    handle = hub.counter_handle("requests_total", key)
    handle.inc()
    assert hub.counter_total("requests_total", 0, 60, {"service": "post"}) == 3


def test_fixed_latency_store(clock):
    from repro.stats.histogram import FixedHistogram

    hub = MetricsHub(clock, window_s=60.0, registry=None, latency_store="fixed")
    labels = {"service": "post"}
    clock.now = 10.0
    hub.record_latency("service_latency", 0.010, labels)
    handle = hub.latency_handle("service_latency", labels)
    handle.record(0.020)
    clock.now = 70.0
    handle.record(0.030)
    pooled = hub.latency_distribution("service_latency", 0, 120, labels)
    assert isinstance(pooled, FixedHistogram)
    assert pooled.count == 3
    assert hub.latency_percentile(
        "service_latency", 50, 0, 120, labels
    ) == pytest.approx(0.020, rel=0.15)


def test_invalid_latency_store(clock):
    with pytest.raises(TelemetryError):
        MetricsHub(clock, latency_store="ring-buffer")
