"""Tests for the metric-name registry and the hub's write validation."""

import warnings

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsHub
from repro.telemetry.registry import (
    DEFAULT_REGISTRY,
    MetricRegistry,
    MetricSpec,
    UnregisteredMetricWarning,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- MetricSpec / MetricRegistry -------------------------------------------


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        MetricSpec("m", "histogram")


def test_register_identical_spec_is_noop():
    registry = MetricRegistry()
    spec = MetricSpec("m", "counter", ("a",))
    registry.register(spec)
    registry.register(MetricSpec("m", "counter", ("a",)))
    assert len(registry) == 1


def test_register_conflicting_spec_raises():
    registry = MetricRegistry([MetricSpec("m", "counter", ("a",))])
    with pytest.raises(ValueError, match="already registered"):
        registry.register(MetricSpec("m", "gauge", ("a",)))


def test_check_unknown_name():
    registry = MetricRegistry([MetricSpec("m", "counter")])
    problem = registry.check("n", "counter", ())
    assert problem is not None and "not declared" in problem


def test_check_kind_mismatch():
    registry = MetricRegistry([MetricSpec("m", "counter")])
    problem = registry.check("m", "gauge", ())
    assert problem is not None and "declared as a counter" in problem


def test_check_label_subset_ok_extra_flagged():
    registry = MetricRegistry([MetricSpec("m", "counter", ("a", "b"))])
    assert registry.check("m", "counter", ("a",)) is None
    assert registry.check("m", "counter", ("a", "b")) is None
    problem = registry.check("m", "counter", ("a", "z"))
    assert problem is not None and "undeclared label keys" in problem


def test_registry_container_protocol():
    registry = MetricRegistry([MetricSpec("m", "counter")])
    assert "m" in registry and "n" not in registry
    assert registry.names() == ["m"]
    assert [spec.name for spec in registry] == ["m"]
    assert registry.get("m").kind == "counter"
    assert registry.get("n") is None


def test_default_registry_has_core_metrics():
    for name in ("request_latency", "requests_total", "cpu_utilization"):
        assert name in DEFAULT_REGISTRY


# -- hub integration --------------------------------------------------------


def test_hub_warns_on_unregistered_name():
    hub = MetricsHub(FakeClock())
    with pytest.warns(UnregisteredMetricWarning, match="not declared"):
        hub.inc_counter("no_such_metric")


def test_hub_warns_on_kind_mismatch():
    hub = MetricsHub(FakeClock())
    with pytest.warns(UnregisteredMetricWarning, match="declared as a counter"):
        hub.record_latency("requests_total", 1.0)


def test_hub_warns_on_undeclared_label_key():
    hub = MetricsHub(FakeClock())
    with pytest.warns(UnregisteredMetricWarning, match="undeclared label keys"):
        hub.observe_gauge("cpu_utilization", 0.5, {"zone": "a"})


def test_hub_strict_raises():
    hub = MetricsHub(FakeClock(), strict=True)
    with pytest.raises(TelemetryError, match="not declared"):
        hub.inc_counter("no_such_metric")


def test_hub_registry_none_disables_checking():
    hub = MetricsHub(FakeClock(), registry=None)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        hub.inc_counter("anything_goes", labels={"x": "y"})


def test_hub_checks_only_on_new_series():
    hub = MetricsHub(FakeClock())
    with pytest.warns(UnregisteredMetricWarning):
        hub.inc_counter("no_such_metric")
    # Same series again: no second warning (check runs at creation only).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        hub.inc_counter("no_such_metric")


def test_hub_registered_writes_are_silent():
    hub = MetricsHub(FakeClock())
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        hub.record_latency("request_latency", 0.1, {"request": "r"})
        hub.inc_counter("requests_total", labels={"request": "r", "service": "s"})
        hub.observe_gauge("replicas", 2.0, {"service": "s"})


# -- counter_total partial-bucket accounting --------------------------------


@pytest.fixture
def counting_hub():
    clock = FakeClock()
    hub = MetricsHub(clock, window_s=60.0, registry=None)
    clock.now = 30.0
    hub.inc_counter("c", 6.0)
    clock.now = 90.0
    hub.inc_counter("c", 12.0)
    return hub


def test_counter_total_exact_bucket(counting_hub):
    assert counting_hub.counter_total("c", 0.0, 60.0) == pytest.approx(6.0)
    assert counting_hub.counter_total("c", 60.0, 120.0) == pytest.approx(12.0)


def test_counter_total_full_range(counting_hub):
    assert counting_hub.counter_total("c", 0.0, 120.0) == pytest.approx(18.0)


def test_counter_total_half_buckets(counting_hub):
    # Uniform-within-bucket assumption: half the bucket, half the count.
    assert counting_hub.counter_total("c", 0.0, 30.0) == pytest.approx(3.0)
    assert counting_hub.counter_total("c", 30.0, 60.0) == pytest.approx(3.0)
    assert counting_hub.counter_total("c", 30.0, 90.0) == pytest.approx(9.0)


def test_counter_total_interval_wider_than_bucket(counting_hub):
    # The old double-clamp could never fire (intersection <= window_s);
    # a window fully inside the interval contributes exactly its count.
    assert counting_hub.counter_total("c", -60.0, 180.0) == pytest.approx(18.0)


def test_counter_total_empty_and_boundary(counting_hub):
    assert counting_hub.counter_total("c", 120.0, 180.0) == 0.0
    # Degenerate interval on a boundary: zero overlap with every bucket.
    assert counting_hub.counter_total("c", 60.0, 60.0) == 0.0


def test_counter_rate_uses_fractional_totals(counting_hub):
    assert counting_hub.counter_rate("c", 0.0, 120.0) == pytest.approx(18.0 / 120.0)
    assert counting_hub.counter_rate("c", 30.0, 90.0) == pytest.approx(9.0 / 60.0)
