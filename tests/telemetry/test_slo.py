"""SLO monitor: window math, alert hysteresis, and the purity contract.

The unit tests drive :class:`SLOMonitor` with a hand-cranked clock so the
multi-window burn arithmetic is checked against exact fractions; the
deployment tests pin the two reproduction invariants -- enabling the
monitor never changes the simulated timeline (same-seed ``RunDigest``
identical on vs off), and same-seed reruns dump byte-identical alert
streams.
"""

import pytest

from repro.errors import TelemetryError
from repro.experiments.artifacts import app_spec
from repro.api import RunOptions, SLOOptions, run_deployment
from repro.telemetry.slo import (
    ALERT_BUDGET_EXHAUSTED,
    ALERT_BURN_RATE,
    Alert,
    SLOMonitor,
    SLOSpec,
    alerts_digest,
    alerts_from_jsonl,
    alerts_to_jsonl,
    slo_specs_for,
)
from repro.workload.defaults import default_mix_for
from repro.workload.patterns import ConstantLoad


class Clock:
    """Hand-cranked sim clock for unit-level monitor tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_monitor(clock, **overrides):
    kwargs = dict(
        fast_window_s=10.0,
        slow_window_s=30.0,
        bucket_s=1.0,
        burn_threshold=4.0,
        resolve_threshold=2.0,
    )
    kwargs.update(overrides)
    return SLOMonitor(
        [SLOSpec("read", target_s=0.1, objective=0.99)], clock, **kwargs
    )


# -- spec validation -------------------------------------------------------


def test_spec_rejects_bad_target_and_objective():
    with pytest.raises(TelemetryError):
        SLOSpec("read", target_s=0.0)
    with pytest.raises(TelemetryError):
        SLOSpec("read", target_s=0.1, objective=1.0)
    with pytest.raises(TelemetryError):
        SLOSpec("read", target_s=0.1, objective=0.0)


def test_error_budget_is_one_minus_objective():
    assert SLOSpec("read", 0.1, objective=0.95).error_budget == pytest.approx(
        0.05
    )


def test_specs_from_app_sla_percentiles():
    spec = app_spec("social-network")
    slos = slo_specs_for(spec)
    assert {s.request_class for s in slos} == {
        rc.name for rc in spec.request_classes
    }
    by_class = {s.request_class: s for s in slos}
    for rc in spec.request_classes:
        slo = by_class[rc.name]
        assert slo.target_s == rc.sla.target_s
        assert slo.objective == pytest.approx(rc.sla.percentile / 100.0)


def test_monitor_rejects_bad_windows_and_duplicates():
    clock = Clock()
    with pytest.raises(TelemetryError):
        make_monitor(clock, bucket_s=0.0)
    with pytest.raises(TelemetryError):
        make_monitor(clock, fast_window_s=0.5)  # < bucket_s
    with pytest.raises(TelemetryError):
        make_monitor(clock, slow_window_s=5.0)  # < fast_window_s
    with pytest.raises(TelemetryError):
        make_monitor(clock, resolve_threshold=8.0)  # > burn_threshold
    with pytest.raises(TelemetryError):
        SLOMonitor(
            [SLOSpec("read", 0.1), SLOSpec("read", 0.2)], clock
        )


# -- window math and alert transitions -------------------------------------


def test_all_bad_stream_fires_both_alerts_immediately():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.observe("read", 1.0)  # > target: bad
    # One bad request: windowed bad fraction 1.0 over a 0.01 budget.
    assert monitor.burn_rates("read") == pytest.approx((100.0, 100.0))
    assert monitor.budget_consumed("read") == pytest.approx(100.0)
    assert [(a.name, a.state) for a in monitor.alerts] == [
        (ALERT_BURN_RATE, "fire"),
        (ALERT_BUDGET_EXHAUSTED, "fire"),
    ]
    assert monitor.active_alerts() == [
        ("read", ALERT_BURN_RATE),
        ("read", ALERT_BUDGET_EXHAUSTED),
    ]


def test_burn_rate_resolves_with_hysteresis():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.observe("read", 1.0)
    assert ("read", ALERT_BURN_RATE) in monitor.active_alerts()
    # Good completions dilute the windows; the alert must stay active
    # until BOTH windows fall to the resolve threshold (2.0), i.e. bad
    # fraction <= 0.02: with one bad that needs >= 50 requests in the
    # slow window.
    resolved_at = None
    for i in range(1, 60):
        clock.now = 0.1 * i  # all within the same buckets/windows
        monitor.observe("read", 0.01)
        if ("read", ALERT_BURN_RATE) not in monitor.active_alerts():
            resolved_at = i + 1  # total requests seen
            break
    assert resolved_at == 50
    resolves = [a for a in monitor.alerts if a.state == "resolve"]
    assert [a.name for a in resolves] == [ALERT_BURN_RATE]
    assert resolves[0].fast_burn == pytest.approx(2.0)
    assert resolves[0].slow_burn == pytest.approx(2.0)


def test_budget_alert_outlives_burn_alert():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.observe("read", 1.0)
    for i in range(1, 100):
        clock.now = 0.1 * i
        monitor.observe("read", 0.01)
    # Burn rate resolved (windowed), but the cumulative budget is still
    # exhausted: 1 bad / 100 total = 0.01 bad fraction = 1.0x the budget,
    # above the 0.9 resolve threshold.
    assert monitor.active_alerts() == [("read", ALERT_BUDGET_EXHAUSTED)]
    for i in range(100, 120):
        clock.now = 0.1 * i
        monitor.observe("read", 0.01)
    # 1/112 < 0.009 crosses the 0.9x hysteresis line.
    assert monitor.active_alerts() == []
    states = [
        (a.name, a.state)
        for a in monitor.alerts
        if a.name == ALERT_BUDGET_EXHAUSTED
    ]
    assert states == [
        (ALERT_BUDGET_EXHAUSTED, "fire"),
        (ALERT_BUDGET_EXHAUSTED, "resolve"),
    ]


def test_old_buckets_retire_from_the_windows():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.observe("read", 1.0)  # bad at t=0
    clock.now = 100.0  # far past the 30 s slow window
    monitor.observe("read", 0.01)
    # Both windows contain only the fresh good request.
    assert monitor.burn_rates("read") == (0.0, 0.0)
    # Cumulative accounting never forgets.
    assert monitor.budget_consumed("read") == pytest.approx(50.0)


def test_queries_decay_after_clock_passes_last_completion():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.observe("read", 1.0)  # bad at t=0
    assert monitor.burn_rates("read") == pytest.approx((100.0, 100.0))
    # No further completions: queries alone must retire expired buckets
    # against the current clock.  The 10 s fast window empties first.
    clock.now = 15.0
    fast, slow = monitor.burn_rates("read")
    assert fast == 0.0
    assert slow == pytest.approx(100.0)
    clock.now = 100.0  # past the 30 s slow window too
    assert monitor.burn_rates("read") == (0.0, 0.0)
    report = monitor.budget_report()
    assert report["read"]["fast_burn"] == 0.0
    assert report["read"]["slow_burn"] == 0.0
    # Cumulative accounting never forgets.
    assert report["read"]["budget_consumed"] == pytest.approx(100.0)


def test_multi_window_rule_needs_both_windows_burning():
    clock = Clock()
    monitor = make_monitor(clock)
    # Prime the slow window with enough good traffic that a short blip
    # keeps the slow burn below threshold.
    for i in range(200):
        clock.now = 0.1 * i
        monitor.observe("read", 0.01)
    clock.now = 25.0
    for _ in range(5):
        monitor.observe("read", 1.0)  # fast burn spikes, slow stays low
    fast, slow = monitor.burn_rates("read")
    assert fast >= monitor.burn_threshold
    assert slow < monitor.burn_threshold
    # The blip is filtered: no burn-rate page (the cumulative budget
    # alert is separate accounting and may legitimately fire).
    assert ("read", ALERT_BURN_RATE) not in monitor.active_alerts()


def test_unknown_class_and_unregistered_alert_raise():
    clock = Clock()
    monitor = make_monitor(clock)
    with pytest.raises(TelemetryError, match="no SLO spec"):
        monitor.observe("write", 0.01)
    with pytest.raises(TelemetryError, match="not declared"):
        monitor._emit("slo-typo", "read", "fire", 0.0, 0.0, 0.0, 0.0)
    with pytest.raises(TelemetryError, match="state"):
        monitor._emit(ALERT_BURN_RATE, "read", "firing", 0.0, 0.0, 0.0, 0.0)


def test_service_budget_breach_counting():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.set_service_budgets({"read": {"db": 0.05, "cache": 0.01}})
    monitor.observe_service("db", "read", 0.04)  # within
    monitor.observe_service("db", "read", 0.06)  # over
    monitor.observe_service("cache", "read", 0.005)  # within
    monitor.observe_service("frontend", "read", 9.9)  # no budget: ignored
    report = monitor.service_budget_report()
    assert report == {
        "cache/read": {
            "budget_s": 0.01,
            "completions": 1.0,
            "over_budget_fraction": 0.0,
        },
        "db/read": {
            "budget_s": 0.05,
            "completions": 2.0,
            "over_budget_fraction": 0.5,
        },
    }


def test_service_budget_report_survives_resolve_dropping_a_pair():
    clock = Clock()
    monitor = make_monitor(clock)
    monitor.set_service_budgets({"read": {"db": 0.05}})
    monitor.observe_service("db", "read", 0.06)  # over
    # A re-solve may drop the (class, service) pair wholesale (the
    # optimizer skips pairs with no percentile choice); already-counted
    # completions must still report against the snapshotted budget.
    monitor.set_service_budgets({})
    report = monitor.service_budget_report()
    assert report == {
        "db/read": {
            "budget_s": 0.05,
            "completions": 1.0,
            "over_budget_fraction": 1.0,
        },
    }
    # New completions for the dropped pair are no longer counted ...
    monitor.observe_service("db", "read", 0.06)
    assert monitor.service_budget_report()["db/read"]["completions"] == 1.0
    # ... and a re-solve that changes the budget updates the snapshot.
    monitor.set_service_budgets({"read": {"db": 0.1}})
    monitor.observe_service("db", "read", 0.06)  # within the new budget
    report = monitor.service_budget_report()["db/read"]
    assert report["budget_s"] == 0.1
    assert report["completions"] == 2.0
    assert report["over_budget_fraction"] == 0.5


# -- serialization ---------------------------------------------------------


def test_alert_jsonl_round_trip_and_digest():
    alerts = [
        Alert(ALERT_BURN_RATE, "read", "fire", 12.5, 8.0, 4.5, 0.3),
        Alert(ALERT_BURN_RATE, "read", "resolve", 40.0, 1.0, 2.0, 0.4),
    ]
    jsonl = alerts_to_jsonl(alerts)
    assert jsonl.endswith("\n")
    assert alerts_from_jsonl(jsonl) == alerts
    assert alerts_digest(jsonl) == alerts_digest(jsonl)
    assert alerts_digest(jsonl) != alerts_digest("")
    assert alerts_to_jsonl([]) == ""


def test_alerts_from_jsonl_rejects_unknown_state():
    # Loaded alerts flow into raw-HTML dashboard cells; a hand-edited
    # sidecar must not smuggle arbitrary strings through ``state``.
    jsonl = alerts_to_jsonl(
        [Alert(ALERT_BURN_RATE, "read", "fire", 0.0, 1.0, 1.0, 0.1)]
    ).replace('"fire"', '"<script>alert(1)</script>"')
    with pytest.raises(TelemetryError, match="state"):
        alerts_from_jsonl(jsonl)


# -- deployment-level purity and reproducibility ---------------------------

SLO_OPTIONS = SLOOptions(fast_window_s=10.0, slow_window_s=30.0, bucket_s=2.0)


def attach_noop(app) -> None:
    """Stand-in resource manager: fixed replicas, nothing to attach."""


def slo_run(seed: int, slo: bool = True):
    return run_deployment(
        app_spec("social-network"),
        default_mix_for("social-network"),
        ConstantLoad(25.0),
        attach_noop,
        manager_name="noop",
        load_name="constant",
        options=RunOptions(
            seed=seed,
            duration_s=50.0,
            measure_from_s=15.0,
            slo=SLO_OPTIONS if slo else None,
            digest=True,
        ),
    )


@pytest.fixture(scope="module")
def monitored_run():
    return slo_run(21)


def test_monitor_is_a_pure_observer(monitored_run):
    bare = slo_run(21, slo=False)
    assert bare.slo is None
    assert monitored_run.slo is not None
    assert monitored_run.run_digest == bare.run_digest
    assert monitored_run.completed_requests == bare.completed_requests
    assert (
        monitored_run.windowed_violation_rate == bare.windowed_violation_rate
    )


def test_alert_stream_is_byte_identical_across_reruns(monitored_run):
    rerun = slo_run(21)
    assert rerun.slo.alerts_jsonl == monitored_run.slo.alerts_jsonl
    assert rerun.slo.budget_report == monitored_run.slo.budget_report
    assert rerun.run_digest == monitored_run.run_digest


def test_budget_report_covers_every_class(monitored_run):
    spec = app_spec("social-network")
    report = monitored_run.slo.budget_report
    assert set(report) == {rc.name for rc in spec.request_classes}
    for row in report.values():
        assert row["good"] + row["bad"] > 0
        assert 0.0 < row["objective"] < 1.0
    total = sum(r["good"] + r["bad"] for r in report.values())
    # The monitor sees every completion, warmup included.
    assert total >= monitored_run.completed_requests
    assert monitored_run.slo.alert_transitions == len(
        alerts_from_jsonl(monitored_run.slo.alerts_jsonl)
    )
