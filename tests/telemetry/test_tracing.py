"""Tests for span trees, critical-path attribution, and exporters."""

import json
from dataclasses import dataclass

import pytest

from repro.errors import TelemetryError
from repro.telemetry.tracing import (
    PHASE_DOWNSTREAM,
    PHASE_QUEUE,
    PHASE_SERVICE,
    CriticalPathSummary,
    Trace,
    Tracer,
    attribute_latency,
    critical_path,
    traces_from_jsonl,
    traces_to_chrome,
    traces_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)


@dataclass
class FakeRequest:
    request_id: int
    request_class: str
    arrival_time: float


def _leaf_trace() -> Trace:
    """queue [0,1] + service [1,3] on one span; e2e latency 3."""
    trace = Trace(1, "read", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_QUEUE, 0.0, 1.0)
    root.record(PHASE_SERVICE, 1.0, 3.0)
    root.response_end = 3.0
    root.end = 3.0
    trace.completion = 3.0
    return trace


# -- critical path ----------------------------------------------------------


def test_single_span_attribution():
    trace = _leaf_trace()
    path = critical_path(trace)
    assert [(s.service, s.phase, s.start, s.end) for s in path] == [
        ("frontend", "queue", 0.0, 1.0),
        ("frontend", "service", 1.0, 3.0),
    ]
    assert sum(s.duration for s in path) == pytest.approx(trace.latency, abs=1e-9)
    assert attribute_latency(trace) == {
        ("frontend", "queue"): 1.0,
        ("frontend", "service"): 2.0,
    }


def test_rpc_child_delegation():
    trace = Trace(2, "read", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_QUEUE, 0.0, 1.0)
    child = root.new_child("storage", "rpc", 1.0)
    child.record(PHASE_QUEUE, 1.0, 1.5)
    child.record(PHASE_SERVICE, 1.5, 2.0)
    child.response_end = 2.0
    child.end = 2.0
    root.record(PHASE_DOWNSTREAM, 1.0, 2.0, child)
    root.record(PHASE_SERVICE, 2.0, 3.0)
    root.response_end = 3.0
    root.end = 3.0
    trace.completion = 3.0
    attribution = attribute_latency(trace)
    # The downstream interval lands on the child, not the parent.
    assert attribution == {
        ("frontend", "queue"): 1.0,
        ("storage", "queue"): 0.5,
        ("storage", "service"): 0.5,
        ("frontend", "service"): 1.0,
    }
    assert sum(attribution.values()) == pytest.approx(trace.latency, abs=1e-9)


def test_async_tail_blamed_on_last_finishing_child():
    trace = Trace(3, "upload", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_SERVICE, 0.0, 2.0)
    root.response_end = 2.0
    # MQ child published mid-service; keeps running past the response.
    child = root.new_child("ml", "mq", 1.5)
    child.record(PHASE_QUEUE, 1.5, 2.5)
    child.record(PHASE_SERVICE, 2.5, 4.0)
    child.response_end = 4.0
    child.end = 4.0
    root.end = 4.0
    trace.completion = 4.0
    attribution = attribute_latency(trace)
    assert attribution == {
        ("frontend", "service"): 2.0,
        ("ml", "queue"): 0.5,  # clipped to after the parent's own activity
        ("ml", "service"): 1.5,
    }
    assert sum(attribution.values()) == pytest.approx(trace.latency, abs=1e-9)


def test_tail_gap_before_child_start_charged_to_parent():
    trace = Trace(4, "upload", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_SERVICE, 0.0, 1.0)
    root.response_end = 1.0
    child = root.new_child("ml", "mq", 2.0)  # starts after parent finished
    child.record(PHASE_SERVICE, 2.0, 3.0)
    child.end = 3.0
    root.end = 3.0
    trace.completion = 3.0
    path = critical_path(trace)
    assert [(s.service, s.phase, s.start, s.end) for s in path] == [
        ("frontend", "service", 0.0, 1.0),
        ("frontend", "downstream", 1.0, 2.0),
        ("ml", "service", 2.0, 3.0),
    ]


def test_tail_without_children_charged_to_span():
    trace = Trace(5, "read", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_SERVICE, 0.0, 1.0)
    root.end = 2.0
    trace.completion = 2.0
    path = critical_path(trace)
    assert path[-1].service == "frontend"
    assert path[-1].phase == PHASE_DOWNSTREAM
    assert sum(s.duration for s in path) == pytest.approx(2.0, abs=1e-9)


def test_incomplete_trace_raises():
    trace = Trace(6, "read", arrival=0.0)
    with pytest.raises(TelemetryError, match="incomplete"):
        critical_path(trace)
    trace.begin_root("frontend", "rpc")
    with pytest.raises(TelemetryError, match="incomplete"):
        critical_path(trace)
    with pytest.raises(TelemetryError, match="not completed"):
        trace.latency


def test_zero_length_segments_dropped():
    trace = Trace(7, "read", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_QUEUE, 1.0, 1.0)
    assert root.segments == []


def test_duplicate_root_raises():
    trace = Trace(8, "read", arrival=0.0)
    trace.begin_root("frontend", "rpc")
    with pytest.raises(TelemetryError, match="already has a root"):
        trace.begin_root("frontend", "rpc")


# -- sampling ---------------------------------------------------------------


def _submit(tracer, n, cls="read"):
    spans = []
    for i in range(n):
        span = tracer.begin(FakeRequest(i, cls, float(i)), "frontend", "rpc")
        spans.append(span)
    return spans


def test_every_n_sampling_is_counter_based():
    tracer = Tracer(sample_every_n=3)
    spans = _submit(tracer, 7)
    sampled = [i for i, s in enumerate(spans) if s is not None]
    assert sampled == [0, 3, 6]  # first always traced, then every third


def test_per_class_sampling_with_default():
    tracer = Tracer(sample_every_n={"read": 2}, default_every_n=4)
    reads = _submit(tracer, 4, cls="read")
    writes = _submit(tracer, 8, cls="write")
    assert [i for i, s in enumerate(reads) if s is not None] == [0, 2]
    assert [i for i, s in enumerate(writes) if s is not None] == [0, 4]


def test_classes_filter():
    tracer = Tracer(classes=("read",))
    assert _submit(tracer, 2, cls="write") == [None, None]
    assert all(s is not None for s in _submit(tracer, 2, cls="read"))


def test_max_traces_drops_and_counts():
    tracer = Tracer(max_traces=1)
    span = tracer.begin(FakeRequest(0, "read", 0.0), "frontend", "rpc")
    span.record(PHASE_SERVICE, 0.0, 1.0)
    span.response_end = span.end = 1.0
    tracer.finish(span.trace, 1.0)
    assert tracer.begin(FakeRequest(1, "read", 1.0), "frontend", "rpc") is None
    assert tracer.dropped == 1
    assert len(tracer.finished) == 1


def test_invalid_sampling_config_rejected():
    with pytest.raises(TelemetryError):
        Tracer(sample_every_n=0)
    with pytest.raises(TelemetryError):
        Tracer(sample_every_n={"read": 0})
    with pytest.raises(TelemetryError):
        Tracer(sample_every_n={}, default_every_n=0)


def test_validate_rejects_inconsistent_trace():
    tracer = Tracer(validate=True)
    span = tracer.begin(FakeRequest(0, "read", 0.0), "frontend", "rpc")
    span.record(PHASE_SERVICE, 0.0, 1.0)
    span.response_end = span.end = 1.0
    # Claimed completion disagrees with the span tree -- but the tail
    # rule keeps attribution exhaustive, so build a *gap* instead:
    # segments start after the trace arrival.
    span.segments[0] = (PHASE_SERVICE, 0.5, 1.0, None)
    with pytest.raises(TelemetryError, match="critical path"):
        tracer.finish(span.trace, 1.0)


# -- aggregation ------------------------------------------------------------


def test_summary_pooled_fractions_and_render():
    summary = CriticalPathSummary()
    summary.add(_leaf_trace())
    agg = summary.pooled("read")
    assert agg.requests == 1
    assert agg.total_latency == pytest.approx(3.0)
    fractions = agg.fractions()
    assert fractions[0] == ("frontend", "service", pytest.approx(2.0 / 3.0))
    text = summary.render()
    assert "read: 1 traced" in text
    assert "service at frontend" in text


def test_summary_windowing_by_completion():
    summary = CriticalPathSummary(window_s=2.0)
    summary.add(_leaf_trace())  # completes at t=3 -> window 1
    assert summary.windows("read") == [1]
    assert summary.aggregate("read", 1).requests == 1
    assert summary.aggregate("read", 0) is None
    assert summary.pooled("read").requests == 1


def test_summary_rejects_bad_window():
    with pytest.raises(TelemetryError):
        CriticalPathSummary(window_s=0.0)


def test_empty_summary_renders_placeholder():
    assert CriticalPathSummary().render() == "(no traces collected)"


# -- exporters --------------------------------------------------------------


def test_jsonl_deterministic_and_newline_terminated():
    text = traces_to_jsonl([_leaf_trace()])
    assert text.endswith("\n")
    assert text == traces_to_jsonl([_leaf_trace()])
    record = json.loads(text.splitlines()[0])
    assert record["request_class"] == "read"
    assert record["latency"] == 3.0
    assert record["root"]["service"] == "frontend"
    assert traces_to_jsonl([]) == ""


def test_write_jsonl(tmp_path):
    path = tmp_path / "out" / "traces.jsonl"
    count = write_jsonl([_leaf_trace(), _leaf_trace()], path)
    assert count == 2
    assert len(path.read_text().splitlines()) == 2


def test_chrome_export_structure():
    payload = traces_to_chrome([_leaf_trace()])
    events = payload["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(metadata) == 1
    # One span event + one per segment, timestamps in microseconds.
    span_event = next(e for e in complete if e["name"] == "frontend [rpc]")
    assert span_event["dur"] == pytest.approx(3.0 * 1e6)
    assert payload["displayTimeUnit"] == "ms"


def test_write_chrome_trace(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace([_leaf_trace()], path)
    assert count == len(json.loads(path.read_text())["traceEvents"])


# -- jsonl round-trip -------------------------------------------------------


def _branching_trace() -> Trace:
    trace = Trace(7, "compose", arrival=0.0)
    root = trace.begin_root("frontend", "rpc")
    root.record(PHASE_QUEUE, 0.0, 1.0)
    child = root.new_child("storage", "rpc", 1.0)
    child.record(PHASE_QUEUE, 1.0, 1.5)
    child.record(PHASE_SERVICE, 1.5, 2.0)
    child.response_end = 2.0
    child.end = 2.0
    root.record(PHASE_DOWNSTREAM, 1.0, 2.0, child)
    root.record(PHASE_SERVICE, 2.0, 3.0)
    root.response_end = 3.0
    root.end = 3.0
    trace.completion = 3.0
    return trace


def test_jsonl_round_trip_is_exact():
    text = traces_to_jsonl([_leaf_trace(), _branching_trace()])
    parsed = traces_from_jsonl(text)
    assert traces_to_jsonl(parsed) == text


def test_round_trip_rebuilds_live_structure():
    (trace,) = traces_from_jsonl(traces_to_jsonl([_branching_trace()]))
    assert trace.request_id == 7
    assert trace.latency == 3.0
    spans = trace.spans()
    assert [s.service for s in spans] == ["frontend", "storage"]
    # Segment child refs resolve back to span objects, so the
    # critical-path machinery works on parsed traces too.
    downstream = [
        seg for seg in trace.root.segments if seg[0] == PHASE_DOWNSTREAM
    ]
    assert downstream[0][3] is trace.root.children[0]
    assert attribute_latency(trace) == attribute_latency(_branching_trace())


def test_round_trip_empty_input():
    assert traces_from_jsonl("") == []
    assert traces_from_jsonl("\n") == []
