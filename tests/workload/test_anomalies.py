"""Tests for the anomaly injector."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, RandomStreams
from repro.workload.anomalies import AnomalyInjector


def make_app(env):
    spec = AppSpec(
        "one",
        services=(
            ServiceSpec("svc", cpus_per_replica=1, handlers={"r": Constant(0.01)}),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 1.0)),),
    )
    return Application(
        spec, env=env, cluster=Cluster(env, nodes=[Node("n", 16, 32)]),
        streams=RandomStreams(0), initial_replicas=1,
    )


def test_injects_and_restores():
    env = Environment()
    app = make_app(env)
    injector = AnomalyInjector(
        app, RandomStreams(1), probability_per_interval=1.0,
        interval_s=20.0, duration_s=10.0,
    )
    injector.start()
    env.run(until=25)  # mid-anomaly
    assert app.services["svc"].speed_factor < 1.0
    env.run(until=35)
    assert app.services["svc"].speed_factor == 1.0
    env.run(until=200)
    assert len(injector.injected) >= 4
    for anomaly in injector.injected:
        assert anomaly.end_s - anomaly.start_s == pytest.approx(10.0)
        assert 0.2 <= anomaly.speed_factor <= 0.6


def test_zero_probability_injects_nothing():
    env = Environment()
    app = make_app(env)
    injector = AnomalyInjector(
        app, RandomStreams(2), probability_per_interval=0.0, interval_s=10.0
    )
    injector.start()
    env.run(until=300)
    assert not injector.injected
    assert app.services["svc"].speed_factor == 1.0


def test_validation():
    env = Environment()
    app = make_app(env)
    with pytest.raises(ConfigurationError):
        AnomalyInjector(app, RandomStreams(0), probability_per_interval=2.0)
    with pytest.raises(ConfigurationError):
        AnomalyInjector(app, RandomStreams(0), interval_s=0)
    with pytest.raises(ConfigurationError):
        AnomalyInjector(app, RandomStreams(0), speed_range=(0.0, 0.5))
    with pytest.raises(ConfigurationError):
        AnomalyInjector(app, RandomStreams(0), services=["ghost"])
    injector = AnomalyInjector(app, RandomStreams(0))
    injector.start()
    with pytest.raises(ConfigurationError):
        injector.start()
