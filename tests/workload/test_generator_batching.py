"""Batched thinning must be bit-identical to the per-candidate loop.

The generator's fast path scans ``batch_candidates`` candidates per
engine wake instead of scheduling a timeout per candidate.  The
determinism contract is exact equivalence, not statistical similarity:
both paths consume the same RNG stream in the same order, so the
accepted arrival *times*, the per-class counts, and the shedding
behaviour must match to the last bit -- only the rejected-candidate
engine events disappear.
"""

import pytest

from repro.sim.engine import Environment
from repro.sim.random import RandomStreams
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad, DiurnalLoad


class RecordingApp:
    """Minimal Application stand-in: records submit times per class."""

    class _Spec:
        name = "recording"

    spec = _Spec()

    def __init__(self, env, classes=("req",), complete_after=None):
        self.env = env
        self.request_classes = dict.fromkeys(classes)
        self.submits = []
        #: None -> requests complete immediately; a float -> completion
        #: is delayed, so max_outstanding actually bites.
        self.complete_after = complete_after

    def submit(self, class_name):
        self.submits.append((self.env.now, class_name))
        done = self.env.event()
        if self.complete_after is None:
            done.succeed()
        else:
            def finish(ev, done=done):
                done.succeed()

            self.env.timeout(self.complete_after)._add_callback(finish)
        return None, done


def _run(pattern, batch_candidates, until=200.0, queue="heap", **gen_kwargs):
    env = Environment(queue=queue)
    app = RecordingApp(env, complete_after=gen_kwargs.pop("complete_after", None))
    generator = LoadGenerator(
        app,
        pattern=pattern,
        mix=RequestMix({"req": 1.0}),
        streams=RandomStreams(42),
        batch_candidates=batch_candidates,
        **gen_kwargs,
    )
    generator.start()
    env.run(until=until)
    return app.submits, generator


@pytest.mark.parametrize(
    "pattern",
    [ConstantLoad(30.0), DiurnalLoad(5.0, 40.0, 60.0)],
    ids=["constant", "diurnal"],
)
def test_batched_arrivals_bit_identical_to_per_candidate(pattern):
    batched, gen_b = _run(pattern, batch_candidates=256)
    legacy, gen_l = _run(pattern, batch_candidates=1)
    assert batched == legacy  # exact float equality, same order
    assert gen_b.generated == gen_l.generated
    assert batched  # non-trivial run


def test_batched_arrivals_identical_on_calendar_queue():
    pattern = ConstantLoad(30.0)
    heap, _ = _run(pattern, batch_candidates=256, queue="heap")
    calendar, _ = _run(pattern, batch_candidates=256, queue="calendar")
    legacy, _ = _run(pattern, batch_candidates=1, queue="calendar")
    assert heap == calendar == legacy


def test_shedding_matches_under_max_outstanding():
    pattern = ConstantLoad(50.0)
    batched, gen_b = _run(
        pattern, 256, max_outstanding=3, complete_after=0.05
    )
    legacy, gen_l = _run(
        pattern, 1, max_outstanding=3, complete_after=0.05
    )
    assert batched == legacy
    assert gen_b.shed == gen_l.shed
    assert gen_b.shed > 0  # the cap actually engaged


def test_stop_at_terminates_identically():
    pattern = ConstantLoad(30.0)
    batched, _ = _run(pattern, 256, until=None, stop_at_s=50.0)
    legacy, _ = _run(pattern, 1, until=None, stop_at_s=50.0)
    assert batched == legacy
    assert all(t < 50.0 for t, _ in batched)


def test_batched_run_schedules_fewer_engine_events():
    pattern = DiurnalLoad(2.0, 40.0, 120.0)

    def events(batch_candidates):
        from repro.sim.trace import RunDigest

        env = Environment(trace=(digest := RunDigest()))
        app = RecordingApp(env)
        LoadGenerator(
            app,
            pattern=pattern,
            mix=RequestMix({"req": 1.0}),
            streams=RandomStreams(42),
            batch_candidates=batch_candidates,
        ).start()
        env.run(until=200.0)
        return digest.events, app.submits

    batched_events, batched_submits = events(256)
    legacy_events, legacy_submits = events(1)
    assert batched_submits == legacy_submits
    # The whole point of the fast path: rejected candidates cost no events.
    assert batched_events < legacy_events
