"""Tests for load patterns and request mixes."""

import pytest

from repro.errors import ConfigurationError
from repro.workload import (
    BurstLoad,
    ComposedLoad,
    ConstantLoad,
    DiurnalLoad,
    RampLoad,
    RequestMix,
)
from repro.workload.defaults import (
    default_mix_for,
    media_service_mix,
    skewed_mixes,
    social_network_mix,
    video_pipeline_mix,
)


def test_constant_load():
    load = ConstantLoad(50.0)
    assert load(0) == 50.0
    assert load(1e6) == 50.0
    assert load.peak == 50.0


def test_constant_load_validation():
    with pytest.raises(ConfigurationError):
        ConstantLoad(0)


def test_diurnal_load_shape():
    load = DiurnalLoad(low=10, high=100, period_s=3600)
    assert load(0) == pytest.approx(10)
    assert load(1800) == pytest.approx(100)
    assert load(3600) == pytest.approx(10)
    assert load(900) == pytest.approx(55)
    assert load.peak == 100


def test_diurnal_validation():
    with pytest.raises(ConfigurationError):
        DiurnalLoad(low=0, high=10, period_s=100)
    with pytest.raises(ConfigurationError):
        DiurnalLoad(low=20, high=10, period_s=100)


def test_burst_load():
    load = BurstLoad(base=40, burst_factor=1.25, start_s=100, duration_s=50)
    assert load(99) == 40
    assert load(100) == 90
    assert load(149) == 90
    assert load(150) == 40
    assert load.peak == 90


def test_ramp_load():
    load = RampLoad(10, 110, duration_s=100)
    assert load(0) == 10
    assert load(50) == 60
    assert load(100) == 110
    assert load(200) == 110  # clamps
    assert load.peak == 110


def test_composed_load():
    load = ComposedLoad(
        [(100.0, ConstantLoad(10)), (50.0, ConstantLoad(30)), (1.0, ConstantLoad(5))]
    )
    assert load(50) == 10
    assert load(120) == 30
    assert load(200) == 5  # last segment extends forever
    assert load.peak == 30


def test_composed_validation():
    with pytest.raises(ConfigurationError):
        ComposedLoad([])


def test_mix_normalises():
    mix = RequestMix({"a": 1.0, "b": 3.0})
    assert mix.fraction("a") == pytest.approx(0.25)
    assert mix.fraction("b") == pytest.approx(0.75)
    assert mix.fraction("missing") == 0.0


def test_mix_validation():
    with pytest.raises(ConfigurationError):
        RequestMix({})
    with pytest.raises(ConfigurationError):
        RequestMix({"a": -1.0})
    with pytest.raises(ConfigurationError):
        RequestMix({"a": 0.0})


def test_mix_scaled():
    mix = RequestMix({"a": 1.0, "b": 1.0})
    doubled = mix.scaled("a", 2.0)
    assert doubled.fraction("a") == pytest.approx(2 / 3)
    with pytest.raises(ConfigurationError):
        mix.scaled("missing", 2.0)


def test_default_mixes_cover_all_classes():
    from repro.apps import (
        build_media_service_spec,
        build_social_network_spec,
        build_video_pipeline_spec,
    )

    for builder in (
        build_social_network_spec,
        build_media_service_spec,
        build_video_pipeline_spec,
    ):
        spec = builder()
        mix = default_mix_for(spec.name)
        assert set(mix.classes()) == {rc.name for rc in spec.request_classes}


def test_media_mix_ratios_match_paper():
    """§VII-C: upload : get-info : download : rate = 1 : 100 : 25 : 25."""
    mix = media_service_mix()
    up = mix.fraction("upload-video")
    assert mix.fraction("get-info") == pytest.approx(100 * up)
    assert mix.fraction("download-video") == pytest.approx(25 * up)
    assert mix.fraction("rate-video") == pytest.approx(25 * up)


def test_video_pipeline_mix_split():
    mix = video_pipeline_mix(0.25)
    assert mix.fraction("high-priority") == pytest.approx(0.25)
    with pytest.raises(ValueError):
        video_pipeline_mix(0.0)


def test_skewed_mixes_differ_from_default():
    for app in ("social-network", "media-service", "video-pipeline"):
        base = default_mix_for(app)
        for skewed in skewed_mixes(app):
            assert skewed.weights != base.weights
    with pytest.raises(ValueError):
        skewed_mixes("nope")


def test_social_mix_read_dominated():
    mix = social_network_mix()
    assert mix.fraction("read-timeline") > mix.fraction("upload-post")


def test_generator_bounded_outstanding():
    """Client-side shedding: outstanding requests never exceed the cap."""
    from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
    from repro.cluster import Cluster, Node
    from repro.net.messages import Call
    from repro.services.spec import ServiceSpec
    from repro.sim import Constant, Environment, RandomStreams
    from repro.workload import LoadGenerator

    spec = AppSpec(
        "shed",
        services=(
            # Capacity 10 rps; offered 100 rps: heavy overload.
            ServiceSpec("svc", cpus_per_replica=1, handlers={"r": Constant(0.1)},
                        threads_per_cpu=4),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 60)),),
    )
    env = Environment()
    app = Application(spec, env=env,
                      cluster=Cluster(env, nodes=[Node("n", 16, 32)]),
                      streams=RandomStreams(0), initial_replicas=1)
    env.run(until=10)
    gen = LoadGenerator(app, ConstantLoad(100.0), RequestMix({"r": 1.0}),
                        RandomStreams(1), stop_at_s=60, max_outstanding=8)
    gen.start()
    env.run(until=60)
    assert gen.outstanding <= 8
    assert gen.shed > 0  # overload was actually shed at the client
    total = sum(gen.generated.values())
    assert total <= 60 * 12  # admitted roughly at service capacity


def test_rate_multiplier_scales_arrivals():
    from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
    from repro.cluster import Cluster, Node
    from repro.net.messages import Call
    from repro.services.spec import ServiceSpec
    from repro.sim import Constant, Environment, RandomStreams
    from repro.workload import LoadGenerator

    spec = AppSpec(
        "mult",
        services=(
            ServiceSpec("svc", cpus_per_replica=4, handlers={"r": Constant(0.001)}),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 60)),),
    )
    env = Environment()
    app = Application(spec, env=env,
                      cluster=Cluster(env, nodes=[Node("n", 16, 32)]),
                      streams=RandomStreams(2), initial_replicas=1)
    env.run(until=10)
    gen = LoadGenerator(app, ConstantLoad(20.0), RequestMix({"r": 1.0}),
                        RandomStreams(3), stop_at_s=1e9)
    gen.start()
    env.run(until=110)
    base_count = sum(gen.generated.values())
    gen.set_rate_multiplier(2.0)
    env.run(until=210)
    doubled = sum(gen.generated.values()) - base_count
    assert doubled == pytest.approx(2 * base_count, rel=0.2)
    with pytest.raises(ConfigurationError):
        gen.set_rate_multiplier(100.0)
