"""Tests for workload trace record/replay."""

import pytest

from repro.apps.topology import AppSpec, Application, RequestClass, SlaSpec
from repro.cluster import Cluster, Node
from repro.errors import ConfigurationError
from repro.net.messages import Call
from repro.services.spec import ServiceSpec
from repro.sim import Constant, Environment, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator, RequestMix
from repro.workload.traces import (
    TraceEntry,
    TracePlayer,
    TraceRecorder,
    WorkloadTrace,
)


def make_app(env, seed=0):
    spec = AppSpec(
        "one",
        services=(
            ServiceSpec("svc", cpus_per_replica=2, handlers={"r": Constant(0.005)}),
        ),
        request_classes=(RequestClass("r", Call("svc"), SlaSpec(99, 1.0)),),
    )
    return Application(
        spec, env=env, cluster=Cluster(env, nodes=[Node("n", 32, 64)]),
        streams=RandomStreams(seed), initial_replicas=1,
    )


def test_entry_validation():
    with pytest.raises(ConfigurationError):
        TraceEntry(-1.0, "r")
    with pytest.raises(ConfigurationError):
        TraceEntry(1.0, "")


def test_trace_must_be_ordered():
    with pytest.raises(ConfigurationError):
        WorkloadTrace([TraceEntry(2.0, "r"), TraceEntry(1.0, "r")])


def test_trace_stats():
    trace = WorkloadTrace(
        [TraceEntry(0.0, "a"), TraceEntry(5.0, "b"), TraceEntry(10.0, "a")]
    )
    assert len(trace) == 3
    assert trace.duration_s == 10.0
    assert trace.classes() == {"a": 2, "b": 1}
    assert trace.mean_rps() == pytest.approx(0.3)


def test_scaled_compresses_time():
    trace = WorkloadTrace([TraceEntry(0.0, "a"), TraceEntry(10.0, "a")])
    hot = trace.scaled(0.5)
    assert hot.duration_s == 5.0
    with pytest.raises(ConfigurationError):
        trace.scaled(0)


def test_slice_rebases():
    trace = WorkloadTrace(
        [TraceEntry(t, "a") for t in (1.0, 3.0, 5.0, 7.0)]
    )
    part = trace.slice(2.0, 6.0)
    assert [e.time_s for e in part.entries] == [1.0, 3.0]
    with pytest.raises(ConfigurationError):
        trace.slice(5, 5)


def test_save_load_round_trip(tmp_path):
    trace = WorkloadTrace(
        [TraceEntry(0.5, "a"), TraceEntry(1.25, "b")]
    )
    path = tmp_path / "trace.jsonl"
    trace.save(path)
    loaded = WorkloadTrace.load(path)
    assert loaded.entries == trace.entries


def test_recorder_captures_generated_load():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    recorder = TraceRecorder(app)
    LoadGenerator(app, ConstantLoad(20.0), RequestMix({"r": 1.0}),
                  RandomStreams(2), stop_at_s=60).start()
    env.run(until=60)
    trace = recorder.detach()
    assert len(trace) > 500
    assert trace.classes().keys() == {"r"}
    # Detached: further submits are not recorded.
    app.submit("r")
    assert len(recorder.entries) == len(trace)


def test_replay_reproduces_arrivals():
    env = Environment()
    app = make_app(env)
    env.run(until=10)
    recorder = TraceRecorder(app)
    LoadGenerator(app, ConstantLoad(15.0), RequestMix({"r": 1.0}),
                  RandomStreams(3), stop_at_s=40).start()
    env.run(until=40)
    trace = recorder.detach()

    env2 = Environment()
    app2 = make_app(env2, seed=9)
    env2.run(until=10)
    player = TracePlayer(app2, trace, start_at_s=10.0)
    player.start()
    env2.run(until=60)
    assert player.replayed == len(trace)
    total = app2.hub.counter_total("client_requests_total", 0, 60, {"request": "r"})
    assert total == len(trace)


def test_player_rejects_unknown_classes():
    env = Environment()
    app = make_app(env)
    trace = WorkloadTrace([TraceEntry(0.0, "ghost")])
    with pytest.raises(ConfigurationError):
        TracePlayer(app, trace)
